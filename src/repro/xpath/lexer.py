"""Tokenizer for XPath 1.0 expressions.

Follows the lexical structure of the XPath recommendation, including the
disambiguation rule of its Section 3.7: a ``*`` or a name such as ``and``,
``or``, ``div`` or ``mod`` is an *operator* exactly when the preceding token
is an operand-ending token (not ``@``, ``::``, ``(``, ``[``, ``,`` or another
operator).  The parser performs the remaining context-dependent
classification (function name vs. node-type vs. axis name).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional

from ..errors import XPathSyntaxError


class TokenType(enum.Enum):
    """Lexical token kinds."""

    NUMBER = "number"
    LITERAL = "literal"
    NAME = "name"
    VARIABLE = "variable"
    OPERATOR_NAME = "operator-name"  # and, or, div, mod (operator position)
    STAR = "*"
    MULTIPLY = "multiply"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    DOT = "."
    DOTDOT = ".."
    AT = "@"
    COMMA = ","
    COLONCOLON = "::"
    SLASH = "/"
    DOUBLE_SLASH = "//"
    PIPE = "|"
    PLUS = "+"
    MINUS = "-"
    EQ = "="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EOF = "eof"


#: Token types after which a ``*`` / name is interpreted as an operator.
_OPERAND_ENDING = frozenset(
    {
        TokenType.NUMBER,
        TokenType.LITERAL,
        TokenType.NAME,
        TokenType.VARIABLE,
        TokenType.STAR,
        TokenType.RPAREN,
        TokenType.RBRACKET,
        TokenType.DOT,
        TokenType.DOTDOT,
    }
)

_OPERATOR_NAMES = frozenset({"and", "or", "div", "mod"})

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (0-based offset)."""

    kind: TokenType
    text: str
    position: int

    @property
    def number_value(self) -> float:
        return float(self.text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r})"


class XPathLexer:
    """Tokenize an XPath expression string."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._previous: Optional[Token] = None

    def tokenize(self) -> list[Token]:
        """Return the full token list, ending with an EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenType.EOF:
                return tokens

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, position=self._pos)

    def _emit(self, kind: TokenType, text: str, position: int) -> Token:
        token = Token(kind, text, position)
        self._previous = token
        return token

    def _operator_position(self) -> bool:
        """True when the next '*' / name must be read as an operator."""
        return self._previous is not None and self._previous.kind in _OPERAND_ENDING

    def _next_token(self) -> Token:
        text = self._text
        while self._pos < len(text) and text[self._pos] in " \t\r\n":
            self._pos += 1
        start = self._pos
        if self._pos >= len(text):
            return self._emit(TokenType.EOF, "", start)
        ch = text[self._pos]

        # Multi-character punctuation first.
        two = text[self._pos : self._pos + 2]
        if two == "//":
            self._pos += 2
            return self._emit(TokenType.DOUBLE_SLASH, two, start)
        if two == "::":
            self._pos += 2
            return self._emit(TokenType.COLONCOLON, two, start)
        if two == "!=":
            self._pos += 2
            return self._emit(TokenType.NEQ, two, start)
        if two == "<=":
            self._pos += 2
            return self._emit(TokenType.LE, two, start)
        if two == ">=":
            self._pos += 2
            return self._emit(TokenType.GE, two, start)
        if two == "..":
            self._pos += 2
            return self._emit(TokenType.DOTDOT, two, start)

        single = {
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "[": TokenType.LBRACKET,
            "]": TokenType.RBRACKET,
            "@": TokenType.AT,
            ",": TokenType.COMMA,
            "/": TokenType.SLASH,
            "|": TokenType.PIPE,
            "+": TokenType.PLUS,
            "-": TokenType.MINUS,
            "=": TokenType.EQ,
            "<": TokenType.LT,
            ">": TokenType.GT,
        }
        if ch in single:
            self._pos += 1
            return self._emit(single[ch], ch, start)

        if ch == "*":
            self._pos += 1
            if self._operator_position():
                return self._emit(TokenType.MULTIPLY, "*", start)
            return self._emit(TokenType.STAR, "*", start)

        if ch in "'\"":
            end = text.find(ch, self._pos + 1)
            if end < 0:
                raise self._error("unterminated string literal")
            value = text[self._pos + 1 : end]
            self._pos = end + 1
            return self._emit(TokenType.LITERAL, value, start)

        if ch.isdigit() or (ch == "." and self._peek_digit(1)):
            return self._read_number(start)

        if ch == ".":
            self._pos += 1
            return self._emit(TokenType.DOT, ".", start)

        if ch == "$":
            self._pos += 1
            name = self._read_qname()
            if not name:
                raise self._error("expected a variable name after '$'")
            return self._emit(TokenType.VARIABLE, name, start)

        if _NAME_RE.match(ch):
            name = self._read_qname()
            if name in _OPERATOR_NAMES and self._operator_position():
                return self._emit(TokenType.OPERATOR_NAME, name, start)
            return self._emit(TokenType.NAME, name, start)

        raise self._error(f"unexpected character {ch!r}")

    def _peek_digit(self, offset: int) -> bool:
        index = self._pos + offset
        return index < len(self._text) and self._text[index].isdigit()

    def _read_number(self, start: int) -> Token:
        text = self._text
        pos = self._pos
        while pos < len(text) and text[pos].isdigit():
            pos += 1
        if pos < len(text) and text[pos] == "." and not text.startswith("..", pos):
            pos += 1
            while pos < len(text) and text[pos].isdigit():
                pos += 1
        self._pos = pos
        return self._emit(TokenType.NUMBER, text[start:pos], start)

    def _read_qname(self) -> str:
        """Read an NCName, optionally 'prefix:local' or 'prefix:*'."""
        match = _NAME_RE.match(self._text, self._pos)
        if not match:
            return ""
        name = match.group(0)
        self._pos = match.end()
        # A following ':' that is not '::' extends the name (QName / prefix:*).
        if (
            self._pos < len(self._text)
            and self._text[self._pos] == ":"
            and not self._text.startswith("::", self._pos)
        ):
            self._pos += 1
            if self._pos < len(self._text) and self._text[self._pos] == "*":
                self._pos += 1
                return f"{name}:*"
            suffix = _NAME_RE.match(self._text, self._pos)
            if not suffix:
                raise self._error("expected a local name after ':'")
            self._pos = suffix.end()
            return f"{name}:{suffix.group(0)}"
        return name


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize an XPath expression string."""
    return XPathLexer(text).tokenize()
