"""Normalisation to the paper's unabbreviated form (Section 5).

The parser already expands the syntactic abbreviations (``//``, ``.``,
``..``, ``@``, default axes).  This pass performs the remaining rewrites the
paper assumes of its input queries:

* **Positional predicates** — a predicate whose static type is a number is
  rewritten to ``position() = e`` (e.g. ``//a[5]`` becomes
  ``/descendant-or-self::node()/child::a[position() = 5]``).  Predicates of
  unknown static type (variables) keep their dynamic check, which the value
  layer resolves at run time (:func:`repro.xpath.values.predicate_truth`).
* **Zero-argument string functions** — ``string-length()`` and
  ``normalize-space()`` receive an explicit ``string()`` argument so that
  all remaining context dependence is confined to the context primitives
  ``position()``, ``last()``, ``string()``, ``number()``, ``name()``,
  ``local-name()``, ``namespace-uri()`` and to location paths.
* **lang()** — rewritten to the internal ``__lang__(ancestor-or-self::node(),
  s)`` form, making the context dependence an ordinary location path.
* **Function validation** — unknown functions and wrong arities are rejected
  here, once, instead of failing differently in every engine.

The result is a new tree; the input tree is never mutated.
"""

from __future__ import annotations

from ..axes.nodetests import ANY_NODE
from ..axes.regex import Axis
from .ast import (
    BinaryOp,
    ContextFunction,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    VariableReference,
)
from .typing import check_function_call, static_type
from .values import ValueType


def normalize(expression: Expression) -> Expression:
    """Return the normalised (unabbreviated-form) version of ``expression``."""
    return _normalize_expr(expression)


def _normalize_expr(expression: Expression) -> Expression:
    if isinstance(expression, (StringLiteral, NumberLiteral, VariableReference, ContextFunction)):
        return expression
    if isinstance(expression, Negate):
        return Negate(_normalize_expr(expression.operand))
    if isinstance(expression, BinaryOp):
        return BinaryOp(
            expression.op,
            _normalize_expr(expression.left),
            _normalize_expr(expression.right),
        )
    if isinstance(expression, UnionExpr):
        return UnionExpr(_normalize_expr(expression.left), _normalize_expr(expression.right))
    if isinstance(expression, FunctionCall):
        return _normalize_function(expression)
    if isinstance(expression, LocationPath):
        return LocationPath(expression.absolute, [_normalize_step(s) for s in expression.steps])
    if isinstance(expression, FilterExpr):
        return FilterExpr(
            _normalize_expr(expression.primary),
            [_normalize_predicate(p) for p in expression.predicates],
        )
    if isinstance(expression, PathExpr):
        path = _normalize_expr(expression.path)
        assert isinstance(path, LocationPath)
        return PathExpr(_normalize_expr(expression.start), path)
    if isinstance(expression, Step):
        return _normalize_step(expression)
    raise TypeError(f"cannot normalise {expression!r}")  # pragma: no cover


def _normalize_step(step: Step) -> Step:
    return Step(step.axis, step.node_test, [_normalize_predicate(p) for p in step.predicates])


def _normalize_predicate(predicate: Expression) -> Expression:
    normalized = _normalize_expr(predicate)
    if static_type(normalized) is ValueType.NUMBER:
        return BinaryOp("=", ContextFunction("position"), normalized)
    return normalized


def _normalize_function(call: FunctionCall) -> Expression:
    check_function_call(call)
    args = [_normalize_expr(arg) for arg in call.args]
    name = call.name
    if name in ("string-length", "normalize-space") and not args:
        args = [ContextFunction("string")]
    if name == "lang":
        ancestors = LocationPath(False, [Step(Axis.ANCESTOR_OR_SELF, ANY_NODE)])
        return FunctionCall("__lang__", [ancestors, args[0]])
    return FunctionCall(name, args)


def compile_query(text_or_ast) -> Expression:
    """Parse (if needed) and normalise a query.

    Accepts either an XPath string or an already-parsed AST; always returns a
    normalised AST.  All engines use this as their single front-end entry
    point, which is what makes differential testing between engines fair.
    """
    from .parser import parse_xpath  # local import to avoid a cycle

    if isinstance(text_or_ast, str):
        ast = parse_xpath(text_or_ast)
    else:
        ast = text_or_ast
    return normalize(ast)
