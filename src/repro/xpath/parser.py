"""Recursive-descent parser for XPath 1.0.

The parser accepts the *abbreviated* syntax and already performs the
expansions that define the unabbreviated form used throughout the paper
(Section 5):

* ``//``  →  a ``descendant-or-self::node()`` step,
* ``.``   →  ``self::node()``,
* ``..``  →  ``parent::node()``,
* ``@n``  →  ``attribute::n``,
* a missing axis →  ``child::``.

The remaining normalisation (numeric predicates → ``position() = e``) is a
separate pass in :mod:`repro.xpath.normalize`, so that tests can inspect both
forms.
"""

from __future__ import annotations

from typing import Optional

from ..axes.nodetests import ANY_NODE, KindTest, NameTest, NodeTest
from ..axes.regex import Axis, axis_by_name
from ..errors import XPathSyntaxError
from .ast import (
    CONTEXT_FUNCTIONS,
    BinaryOp,
    ContextFunction,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    VariableReference,
)
from .lexer import Token, TokenType, tokenize

_NODE_TYPE_NAMES = frozenset({"node", "text", "comment", "processing-instruction"})

_AXIS_NAMES = frozenset(axis.value for axis in Axis)


def parse_xpath(text: str) -> Expression:
    """Parse an XPath 1.0 expression string into an AST."""
    return _Parser(tokenize(text), text).parse()


class _Parser:
    def __init__(self, tokens: list[Token], source: str):
        self._tokens = tokens
        self._source = source
        self._index = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenType.EOF:
            self._index += 1
        return token

    def _accept(self, kind: TokenType) -> Optional[Token]:
        if self._peek().kind is kind:
            return self._advance()
        return None

    def _expect(self, kind: TokenType) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise self._error(f"expected {kind.value!r}, found {token.text!r}")
        return self._advance()

    def _error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(
            f"{message} in query {self._source!r}", position=self._peek().position
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> Expression:
        expression = self._parse_or()
        if self._peek().kind is not TokenType.EOF:
            raise self._error(f"unexpected trailing token {self._peek().text!r}")
        return expression

    # ------------------------------------------------------------------
    # Expression grammar (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._peek().kind is TokenType.OPERATOR_NAME and self._peek().text == "or":
            self._advance()
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_equality()
        while self._peek().kind is TokenType.OPERATOR_NAME and self._peek().text == "and":
            self._advance()
            left = BinaryOp("and", left, self._parse_equality())
        return left

    def _parse_equality(self) -> Expression:
        left = self._parse_relational()
        while self._peek().kind in (TokenType.EQ, TokenType.NEQ):
            op = "=" if self._advance().kind is TokenType.EQ else "!="
            left = BinaryOp(op, left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expression:
        mapping = {
            TokenType.LT: "<",
            TokenType.LE: "<=",
            TokenType.GT: ">",
            TokenType.GE: ">=",
        }
        left = self._parse_additive()
        while self._peek().kind in mapping:
            op = mapping[self._advance().kind]
            left = BinaryOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self._peek().kind in (TokenType.PLUS, TokenType.MINUS):
            op = "+" if self._advance().kind is TokenType.PLUS else "-"
            left = BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is TokenType.MULTIPLY:
                self._advance()
                left = BinaryOp("*", left, self._parse_unary())
            elif token.kind is TokenType.OPERATOR_NAME and token.text in ("div", "mod"):
                self._advance()
                left = BinaryOp(token.text, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self._accept(TokenType.MINUS):
            return Negate(self._parse_unary())
        return self._parse_union()

    def _parse_union(self) -> Expression:
        left = self._parse_path()
        while self._accept(TokenType.PIPE):
            left = UnionExpr(left, self._parse_path())
        return left

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _parse_path(self) -> Expression:
        token = self._peek()
        if token.kind in (TokenType.SLASH, TokenType.DOUBLE_SLASH):
            return self._parse_absolute_path()
        if self._starts_filter_expr():
            return self._parse_filter_path()
        steps = self._parse_relative_steps()
        return LocationPath(False, steps)

    def _starts_filter_expr(self) -> bool:
        """Does the upcoming token begin a FilterExpr (not a location path)?"""
        token = self._peek()
        if token.kind in (TokenType.VARIABLE, TokenType.LITERAL, TokenType.NUMBER, TokenType.LPAREN):
            return True
        if token.kind is TokenType.NAME and self._peek(1).kind is TokenType.LPAREN:
            # A function call — unless the name is a node-type test.
            return token.text not in _NODE_TYPE_NAMES
        return False

    def _parse_absolute_path(self) -> Expression:
        steps: list[Step] = []
        if self._accept(TokenType.DOUBLE_SLASH):
            steps.append(Step(Axis.DESCENDANT_OR_SELF, ANY_NODE))
            steps.extend(self._parse_relative_steps())
            return LocationPath(True, steps)
        self._expect(TokenType.SLASH)
        if self._starts_step():
            steps.extend(self._parse_relative_steps())
        return LocationPath(True, steps)

    def _parse_filter_path(self) -> Expression:
        primary = self._parse_primary()
        predicates: list[Expression] = []
        while self._peek().kind is TokenType.LBRACKET:
            predicates.append(self._parse_predicate())
        filtered: Expression = FilterExpr(primary, predicates) if predicates else primary
        token = self._peek()
        if token.kind in (TokenType.SLASH, TokenType.DOUBLE_SLASH):
            steps: list[Step] = []
            if self._advance().kind is TokenType.DOUBLE_SLASH:
                steps.append(Step(Axis.DESCENDANT_OR_SELF, ANY_NODE))
            steps.extend(self._parse_relative_steps())
            return PathExpr(filtered, LocationPath(False, steps))
        return filtered

    def _starts_step(self) -> bool:
        token = self._peek()
        if token.kind in (TokenType.NAME, TokenType.STAR, TokenType.AT, TokenType.DOT, TokenType.DOTDOT):
            return True
        return False

    def _parse_relative_steps(self) -> list[Step]:
        steps = [self._parse_step()]
        while True:
            token = self._peek()
            if token.kind is TokenType.SLASH:
                self._advance()
                steps.append(self._parse_step())
            elif token.kind is TokenType.DOUBLE_SLASH:
                self._advance()
                steps.append(Step(Axis.DESCENDANT_OR_SELF, ANY_NODE))
                steps.append(self._parse_step())
            else:
                return steps

    def _parse_step(self) -> Step:
        token = self._peek()
        if token.kind is TokenType.DOT:
            self._advance()
            return Step(Axis.SELF, ANY_NODE)
        if token.kind is TokenType.DOTDOT:
            self._advance()
            return Step(Axis.PARENT, ANY_NODE)
        axis = self._parse_axis_specifier()
        node_test = self._parse_node_test()
        predicates: list[Expression] = []
        while self._peek().kind is TokenType.LBRACKET:
            predicates.append(self._parse_predicate())
        return Step(axis, node_test, predicates)

    def _parse_axis_specifier(self) -> Axis:
        token = self._peek()
        if token.kind is TokenType.AT:
            self._advance()
            return Axis.ATTRIBUTE
        if (
            token.kind is TokenType.NAME
            and token.text in _AXIS_NAMES
            and self._peek(1).kind is TokenType.COLONCOLON
        ):
            self._advance()
            self._advance()
            return axis_by_name(token.text)
        return Axis.CHILD

    def _parse_node_test(self) -> NodeTest:
        token = self._peek()
        if token.kind is TokenType.STAR:
            self._advance()
            return NameTest(None)
        if token.kind is TokenType.NAME:
            if token.text in _NODE_TYPE_NAMES and self._peek(1).kind is TokenType.LPAREN:
                self._advance()
                self._expect(TokenType.LPAREN)
                target: Optional[str] = None
                if token.text == "processing-instruction" and self._peek().kind is TokenType.LITERAL:
                    target = self._advance().text
                self._expect(TokenType.RPAREN)
                return KindTest(token.text, target)
            self._advance()
            if token.text.endswith(":*"):
                # Namespace wildcard NCName:* — matched structurally by prefix.
                return NameTest(token.text)
            return NameTest(token.text)
        raise self._error(f"expected a node test, found {token.text!r}")

    def _parse_predicate(self) -> Expression:
        self._expect(TokenType.LBRACKET)
        expression = self._parse_or()
        self._expect(TokenType.RBRACKET)
        return expression

    # ------------------------------------------------------------------
    # Primary expressions and function calls
    # ------------------------------------------------------------------
    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind is TokenType.VARIABLE:
            self._advance()
            return VariableReference(token.text)
        if token.kind is TokenType.LITERAL:
            self._advance()
            return StringLiteral(token.text)
        if token.kind is TokenType.NUMBER:
            self._advance()
            return NumberLiteral(token.number_value)
        if token.kind is TokenType.LPAREN:
            self._advance()
            inner = self._parse_or()
            self._expect(TokenType.RPAREN)
            return inner
        if token.kind is TokenType.NAME and self._peek(1).kind is TokenType.LPAREN:
            return self._parse_function_call()
        raise self._error(f"expected a primary expression, found {token.text!r}")

    def _parse_function_call(self) -> Expression:
        name_token = self._expect(TokenType.NAME)
        self._expect(TokenType.LPAREN)
        args: list[Expression] = []
        if self._peek().kind is not TokenType.RPAREN:
            args.append(self._parse_or())
            while self._accept(TokenType.COMMA):
                args.append(self._parse_or())
        self._expect(TokenType.RPAREN)
        name = name_token.text
        if not args and name in CONTEXT_FUNCTIONS:
            return ContextFunction(name)
        return FunctionCall(name, args)
