"""Static typing of XPath expressions.

XPath 1.0 is statically typed apart from variable references: every
expression has one of the four types num/str/bool/nset (Definition 5.1).
The engines and the fragment classifiers use :func:`static_type` to

* rewrite numeric predicates to ``position() = e`` (the unabbreviated form
  of the paper's Section 5),
* detect node-set-valued subexpressions for the Extended Wadler restrictions
  (Section 11.1), and
* give early errors for obviously ill-typed queries (e.g. a location path
  applied to a number).

Variable references type as :data:`ValueType.UNKNOWN`; anything combining an
unknown keeps the type dictated by the operator (XPath operators fix their
result type regardless of argument types).
"""

from __future__ import annotations

from ..errors import XPathTypeError
from .ast import (
    ARITHMETIC_OPS,
    BinaryOp,
    ContextFunction,
    Expression,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    PathExpr,
    StringLiteral,
    UnionExpr,
    VariableReference,
)
from .values import ValueType

#: Return type of every core-library function (explicit-argument forms).
FUNCTION_RETURN_TYPES: dict[str, ValueType] = {
    # node-set functions
    "id": ValueType.NODE_SET,
    # numeric functions
    "count": ValueType.NUMBER,
    "sum": ValueType.NUMBER,
    "floor": ValueType.NUMBER,
    "ceiling": ValueType.NUMBER,
    "round": ValueType.NUMBER,
    "string-length": ValueType.NUMBER,
    "number": ValueType.NUMBER,
    # string functions
    "string": ValueType.STRING,
    "concat": ValueType.STRING,
    "substring": ValueType.STRING,
    "substring-before": ValueType.STRING,
    "substring-after": ValueType.STRING,
    "normalize-space": ValueType.STRING,
    "translate": ValueType.STRING,
    "local-name": ValueType.STRING,
    "namespace-uri": ValueType.STRING,
    "name": ValueType.STRING,
    # boolean functions
    "boolean": ValueType.BOOLEAN,
    "not": ValueType.BOOLEAN,
    "true": ValueType.BOOLEAN,
    "false": ValueType.BOOLEAN,
    "contains": ValueType.BOOLEAN,
    "starts-with": ValueType.BOOLEAN,
    "lang": ValueType.BOOLEAN,
    # internal helper produced by the normaliser for lang()
    "__lang__": ValueType.BOOLEAN,
}

#: (min, max) argument counts; None means unbounded.
FUNCTION_ARITIES: dict[str, tuple[int, int | None]] = {
    "id": (1, 1),
    "count": (1, 1),
    "sum": (1, 1),
    "floor": (1, 1),
    "ceiling": (1, 1),
    "round": (1, 1),
    "string-length": (0, 1),
    "number": (0, 1),
    "string": (0, 1),
    "concat": (2, None),
    "substring": (2, 3),
    "substring-before": (2, 2),
    "substring-after": (2, 2),
    "normalize-space": (0, 1),
    "translate": (3, 3),
    "local-name": (0, 1),
    "namespace-uri": (0, 1),
    "name": (0, 1),
    "boolean": (1, 1),
    "not": (1, 1),
    "true": (0, 0),
    "false": (0, 0),
    "contains": (2, 2),
    "starts-with": (2, 2),
    "lang": (1, 1),
    "__lang__": (2, 2),
}

_CONTEXT_FUNCTION_TYPES = {
    "position": ValueType.NUMBER,
    "last": ValueType.NUMBER,
    "number": ValueType.NUMBER,
    "string": ValueType.STRING,
    "name": ValueType.STRING,
    "local-name": ValueType.STRING,
    "namespace-uri": ValueType.STRING,
}


def static_type(expression: Expression) -> ValueType:
    """The static XPath type of ``expression``."""
    if isinstance(expression, NumberLiteral):
        return ValueType.NUMBER
    if isinstance(expression, StringLiteral):
        return ValueType.STRING
    if isinstance(expression, VariableReference):
        return ValueType.UNKNOWN
    if isinstance(expression, ContextFunction):
        return _CONTEXT_FUNCTION_TYPES[expression.name]
    if isinstance(expression, Negate):
        return ValueType.NUMBER
    if isinstance(expression, BinaryOp):
        if expression.op in ARITHMETIC_OPS:
            return ValueType.NUMBER
        return ValueType.BOOLEAN
    if isinstance(expression, (LocationPath, FilterExpr, PathExpr, UnionExpr)):
        return ValueType.NODE_SET
    if isinstance(expression, FunctionCall):
        try:
            return FUNCTION_RETURN_TYPES[expression.name]
        except KeyError:
            raise XPathTypeError(f"unknown function {expression.name}()") from None
    # Step objects only occur inside LocationPath; if one is typed directly it
    # denotes the node set produced by the step.
    return ValueType.NODE_SET


def check_function_call(expression: FunctionCall) -> None:
    """Validate that a function exists and receives an allowed argument count."""
    if expression.name not in FUNCTION_RETURN_TYPES:
        raise XPathTypeError(f"unknown function {expression.name}()")
    minimum, maximum = FUNCTION_ARITIES[expression.name]
    count = len(expression.args)
    if count < minimum or (maximum is not None and count > maximum):
        if maximum is None:
            expected = f"at least {minimum}"
        elif minimum == maximum:
            expected = str(minimum)
        else:
            expected = f"{minimum}..{maximum}"
        raise XPathTypeError(
            f"{expression.name}() called with {count} argument(s), expected {expected}"
        )


def is_node_set_typed(expression: Expression) -> bool:
    """True when the expression's static type is (or may be) a node set."""
    return static_type(expression) in (ValueType.NODE_SET, ValueType.UNKNOWN)
