"""XPath 1.0 value system: number, string, boolean, node-set (paper §5).

XPath expressions evaluate to one of four types (Definition 5.1).  Numbers
are IEEE doubles (Python floats, including NaN and infinities), strings and
booleans are the native Python types, and node sets are represented by
:class:`NodeSet`, an immutable set of nodes that also knows how to produce
its members in document order (needed by ``string(nset)``, which picks the
first node, and by result reporting).

The conversion functions ``to_number`` / ``to_string`` / ``to_boolean``
implement the F[[number]], F[[string]] and F[[boolean]] rows of Table II and
the lexical rules of the XPath recommendation (e.g. integral numbers print
without a decimal point).
"""

from __future__ import annotations

import enum
import math
import re
from operator import attrgetter
from typing import Iterable, Iterator, Optional, Union

from ..xmlmodel.nodes import Node

_ORDER = attrgetter("order")


class ValueType(enum.Enum):
    """The four XPath expression types (abbreviated num/str/bool/nset)."""

    NUMBER = "num"
    STRING = "str"
    BOOLEAN = "bool"
    NODE_SET = "nset"
    #: Static type of variable references, unknown until a binding is seen.
    UNKNOWN = "unknown"


def merge_union(
    left: tuple[Node, ...], right: tuple[Node, ...]
) -> Optional[tuple[Node, ...]]:
    """Union of two document-order node arrays as a linear merge.

    Returns ``None`` when an order collision between *distinct* nodes is
    found (operands from different documents); callers then fall back to
    identity-set semantics.
    """
    if not left:
        return right
    if not right:
        return left
    result: list[Node] = []
    i = j = 0
    len_left, len_right = len(left), len(right)
    while i < len_left and j < len_right:
        a, b = left[i], right[j]
        if a.order < b.order:
            result.append(a)
            i += 1
        elif b.order < a.order:
            result.append(b)
            j += 1
        elif a is b:
            result.append(a)
            i += 1
            j += 1
        else:
            return None
    result.extend(left[i:])
    result.extend(right[j:])
    return tuple(result)


def merge_intersection(
    left: tuple[Node, ...], right: tuple[Node, ...]
) -> Optional[tuple[Node, ...]]:
    """Intersection of two document-order node arrays as a linear merge.

    Returns ``None`` on a cross-document order collision (see merge_union).
    """
    result: list[Node] = []
    i = j = 0
    len_left, len_right = len(left), len(right)
    while i < len_left and j < len_right:
        a, b = left[i], right[j]
        if a.order < b.order:
            i += 1
        elif b.order < a.order:
            j += 1
        elif a is b:
            result.append(a)
            i += 1
            j += 1
        else:
            return None
    return tuple(result)


def merge_difference(
    left: tuple[Node, ...], right: tuple[Node, ...]
) -> Optional[tuple[Node, ...]]:
    """Difference of two document-order node arrays as a linear merge.

    Returns ``None`` on a cross-document order collision (see merge_union).
    """
    if not right:
        return left
    result: list[Node] = []
    i = j = 0
    len_left, len_right = len(left), len(right)
    while i < len_left:
        a = left[i]
        while j < len_right and right[j].order < a.order:
            j += 1
        if j >= len_right:
            result.extend(left[i:])
            break
        if right[j].order != a.order:
            result.append(a)
        elif right[j] is not a:
            return None
        i += 1
    return tuple(result)


class OrderSet:
    """A node set represented as a sorted document-order array.

    Within one document the ``order`` integers are unique, so document order
    is a total order and a sorted array of distinct nodes is a canonical set
    representation: union, intersection and difference are linear merges and
    iteration in document order is free.  This is the representation backing
    :class:`NodeSet` whenever the nodes' order is already known.
    """

    __slots__ = ("nodes",)

    def __init__(self, nodes: Iterable[Node] = (), *, presorted: bool = False):
        if presorted:
            self.nodes: tuple[Node, ...] = tuple(nodes)
        else:
            self.nodes = tuple(sorted(set(nodes), key=_ORDER))

    def union(self, other: "OrderSet") -> "OrderSet":
        merged = merge_union(self.nodes, other.nodes)
        if merged is None:
            return OrderSet(set(self.nodes) | set(other.nodes))
        return OrderSet(merged, presorted=True)

    def intersection(self, other: "OrderSet") -> "OrderSet":
        merged = merge_intersection(self.nodes, other.nodes)
        if merged is None:
            return OrderSet(set(self.nodes) & set(other.nodes))
        return OrderSet(merged, presorted=True)

    def difference(self, other: "OrderSet") -> "OrderSet":
        merged = merge_difference(self.nodes, other.nodes)
        if merged is None:
            return OrderSet(set(self.nodes) - set(other.nodes))
        return OrderSet(merged, presorted=True)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __bool__(self) -> bool:
        return bool(self.nodes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderSet):
            return self.nodes == other.nodes
        if isinstance(other, (set, frozenset)):
            return frozenset(self.nodes) == other
        return NotImplemented

    def __hash__(self) -> int:
        # Must match __eq__, which compares equal to frozensets of the same
        # nodes — so hash the unordered view, like NodeSet does.
        return hash(frozenset(self.nodes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OrderSet({list(self.nodes)!r})"


class NodeSet:
    """An immutable set of document nodes.

    Iteration yields nodes in document order.  Set operations return new
    instances; the underlying nodes are shared (nodes are identity objects).

    Internally a node set carries up to two views: an unordered ``frozenset``
    (membership, equality with plain sets) and a document-order array (an
    :class:`OrderSet`-style sorted tuple).  Either view is derived lazily
    from the other, and the set algebra uses linear merges whenever both
    operands already know their order — avoiding the ``sorted(set,
    key=lambda)`` round-trips of the pre-index implementation.
    """

    __slots__ = ("_nodes", "_ordered", "_origin")

    def __init__(self, nodes: Iterable[Node] = ()):
        if isinstance(nodes, OrderSet):
            self._nodes: Optional[frozenset[Node]] = None
            self._ordered: Optional[tuple[Node, ...]] = nodes.nodes
        elif isinstance(nodes, NodeSet):
            self._nodes = nodes._nodes
            self._ordered = nodes._ordered
        else:
            self._nodes = frozenset(nodes)
            self._ordered = None
        self._origin = None

    @classmethod
    def from_sorted(cls, nodes: Iterable[Node]) -> "NodeSet":
        """Build a node set from nodes already distinct and in document order."""
        result = cls.__new__(cls)
        result._nodes = None
        result._ordered = tuple(nodes)
        result._origin = None
        return result

    # ------------------------------------------------------------------
    # Generation stamping (mutable-document staleness guard)
    # ------------------------------------------------------------------
    def stamp(self, document) -> "NodeSet":
        """Record the document generation this result was computed at.

        Called by the engine layer on final results.  Once the document
        moves to a newer generation, order-dependent uses of this set raise
        :class:`~repro.errors.StaleResultError` instead of silently
        returning wrong orders.  Results stamped against a pinned
        ``document.snapshot()`` never go stale.
        """
        self._origin = (document, document.generation)
        return self

    @property
    def generation(self) -> Optional[int]:
        """The document generation this set was computed at, when stamped."""
        origin = getattr(self, "_origin", None)
        return None if origin is None else origin[1]

    def _check_fresh(self) -> None:
        origin = getattr(self, "_origin", None)
        if origin is not None:
            document, generation = origin
            current = document.generation
            if current != generation:
                from ..errors import StaleResultError

                raise StaleResultError(generation, current)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def in_document_order(self) -> tuple[Node, ...]:
        """Members sorted by document order (cached).

        Raises :class:`~repro.errors.StaleResultError` when this set was
        stamped at an older generation of a since-edited document.
        """
        self._check_fresh()
        if self._ordered is None:
            self._ordered = tuple(sorted(self._nodes, key=_ORDER))
        return self._ordered

    def first(self) -> Optional[Node]:
        """first_<doc — the first member in document order, or ``None``."""
        ordered = self.in_document_order()
        return ordered[0] if ordered else None

    def as_set(self) -> frozenset[Node]:
        if self._nodes is None:
            self._nodes = frozenset(self._ordered)
        return self._nodes

    def as_order_set(self) -> OrderSet:
        """The document-order array view of this node set."""
        return OrderSet(self.in_document_order(), presorted=True)

    # ------------------------------------------------------------------
    # Set algebra (merge-based when both operands know their order)
    # ------------------------------------------------------------------
    def union(self, other: "NodeSet") -> "NodeSet":
        if self._ordered is not None and other._ordered is not None:
            merged = merge_union(self._ordered, other._ordered)
            if merged is not None:
                return NodeSet.from_sorted(merged)
        return NodeSet(self.as_set() | other.as_set())

    def intersection(self, other: "NodeSet") -> "NodeSet":
        if self._ordered is not None and other._ordered is not None:
            merged = merge_intersection(self._ordered, other._ordered)
            if merged is not None:
                return NodeSet.from_sorted(merged)
        return NodeSet(self.as_set() & other.as_set())

    def difference(self, other: "NodeSet") -> "NodeSet":
        if self._ordered is not None and other._ordered is not None:
            merged = merge_difference(self._ordered, other._ordered)
            if merged is not None:
                return NodeSet.from_sorted(merged)
        return NodeSet(self.as_set() - other.as_set())

    def __or__(self, other: "NodeSet") -> "NodeSet":
        return self.union(other)

    def __and__(self, other: "NodeSet") -> "NodeSet":
        return self.intersection(other)

    def __sub__(self, other: "NodeSet") -> "NodeSet":
        return self.difference(other)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._ordered is not None:
            return len(self._ordered)
        return len(self._nodes)

    def __bool__(self) -> bool:
        if self._ordered is not None:
            return bool(self._ordered)
        return bool(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.in_document_order())

    def __contains__(self, node: object) -> bool:
        return node in self.as_set()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NodeSet):
            if self._ordered is not None and other._ordered is not None:
                return self._ordered == other._ordered
            return self.as_set() == other.as_set()
        if isinstance(other, (set, frozenset)):
            return self.as_set() == frozenset(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.as_set())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(node) for node in list(self.in_document_order())[:4])
        suffix = ", …" if len(self) > 4 else ""
        return f"NodeSet({{{preview}{suffix}}})"


#: Union of the Python types an XPath value may take.
XPathValue = Union[float, str, bool, NodeSet]


def value_type(value: XPathValue) -> ValueType:
    """The XPath type of a runtime value."""
    if isinstance(value, bool):
        return ValueType.BOOLEAN
    if isinstance(value, (int, float)):
        return ValueType.NUMBER
    if isinstance(value, str):
        return ValueType.STRING
    if isinstance(value, NodeSet):
        return ValueType.NODE_SET
    raise TypeError(f"not an XPath value: {value!r}")


# ----------------------------------------------------------------------
# Conversions (Table II: F[[number]], F[[string]], F[[boolean]])
# ----------------------------------------------------------------------
def to_number(value: XPathValue) -> float:
    """Convert any XPath value to a number (F[[number : T → num]])."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return string_to_number(value)
    if isinstance(value, NodeSet):
        return string_to_number(to_string(value))
    raise TypeError(f"cannot convert {value!r} to a number")


#: The XPath 1.0 *Number* production with an optional leading minus sign:
#: ``Number ::= Digits ('.' Digits?)? | '.' Digits``.  Deliberately narrower
#: than Python's ``float()``: no exponents (``1e2``), no ``+`` sign, no
#: ``Infinity``/``nan`` spellings, no underscores — all of those must convert
#: to NaN per the recommendation's number() rules.
_NUMBER_GRAMMAR = re.compile(r"-?(?:[0-9]+(?:\.[0-9]*)?|\.[0-9]+)\Z")

#: XML whitespace (the only characters number() may strip; Python's ``strip``
#: would also eat unicode spaces the spec does not allow around a Number).
_XML_WHITESPACE = " \t\r\n"


def string_to_number(text: str) -> float:
    """The ``to_number`` lexical rule (XPath 1.0 §4.4).

    Optional XML whitespace, an optional minus sign, then the *Number*
    grammar: digits with an optional fraction part.  Anything else — an
    exponent, a ``+`` sign, ``Infinity``, a second sign — is NaN.
    """
    stripped = text.strip(_XML_WHITESPACE)
    if not _NUMBER_GRAMMAR.match(stripped):
        return math.nan
    return float(stripped)


def to_string(value: XPathValue) -> str:
    """Convert any XPath value to a string (F[[string : T → str]])."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return format_number(float(value))
    if isinstance(value, str):
        return value
    if isinstance(value, NodeSet):
        first = value.first()
        return "" if first is None else first.string_value()
    raise TypeError(f"cannot convert {value!r} to a string")


def format_number(number: float) -> str:
    """``to_string`` for numbers, following the XPath lexical rules.

    Integers are rendered without a decimal point or exponent; NaN and the
    infinities use the spec spellings.
    """
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "Infinity" if number > 0 else "-Infinity"
    if number == 0:
        return "0"
    if number == int(number) and abs(number) < 1e16:
        return str(int(number))
    text = repr(number)
    # Python may use exponent notation for very small/large magnitudes;
    # expand it losslessly, since XPath number-to-string never uses exponents.
    if "e" in text or "E" in text:
        from decimal import Decimal

        text = format(Decimal(text), "f")
        if "." in text:
            text = text.rstrip("0").rstrip(".")
    return text


def to_boolean(value: XPathValue) -> bool:
    """Convert any XPath value to a boolean (F[[boolean : T → bool]])."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        number = float(value)
        return not (number == 0 or math.isnan(number))
    if isinstance(value, str):
        return value != ""
    if isinstance(value, NodeSet):
        return len(value) > 0
    raise TypeError(f"cannot convert {value!r} to a boolean")


def node_string_value(node: Node) -> str:
    """strval(x): the string value of a single node (paper Section 4)."""
    return node.string_value()


def node_number_value(node: Node) -> float:
    """to_number(strval(x)) — used by sum() and nset comparisons."""
    return string_to_number(node.string_value())


def predicate_truth(value: XPathValue, position: int) -> bool:
    """The truth of a predicate value relative to a context position.

    The XPath rule: a number predicate is true iff it equals the context
    position; anything else is taken through boolean().  The normaliser
    rewrites statically-known numeric predicates to ``position() = e``
    (paper Section 5), so this runtime rule only matters for dynamically
    numeric values (e.g. variables).
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value) == float(position)
    return to_boolean(value)
