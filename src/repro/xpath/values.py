"""XPath 1.0 value system: number, string, boolean, node-set (paper §5).

XPath expressions evaluate to one of four types (Definition 5.1).  Numbers
are IEEE doubles (Python floats, including NaN and infinities), strings and
booleans are the native Python types, and node sets are represented by
:class:`NodeSet`, an immutable set of nodes that also knows how to produce
its members in document order (needed by ``string(nset)``, which picks the
first node, and by result reporting).

The conversion functions ``to_number`` / ``to_string`` / ``to_boolean``
implement the F[[number]], F[[string]] and F[[boolean]] rows of Table II and
the lexical rules of the XPath recommendation (e.g. integral numbers print
without a decimal point).
"""

from __future__ import annotations

import enum
import math
from typing import Iterable, Iterator, Optional, Union

from ..xmlmodel.nodes import Node


class ValueType(enum.Enum):
    """The four XPath expression types (abbreviated num/str/bool/nset)."""

    NUMBER = "num"
    STRING = "str"
    BOOLEAN = "bool"
    NODE_SET = "nset"
    #: Static type of variable references, unknown until a binding is seen.
    UNKNOWN = "unknown"


class NodeSet:
    """An immutable set of document nodes.

    Iteration yields nodes in document order.  Set operations return new
    instances; the underlying nodes are shared (nodes are identity objects).
    """

    __slots__ = ("_nodes", "_ordered")

    def __init__(self, nodes: Iterable[Node] = ()):
        self._nodes: frozenset[Node] = frozenset(nodes)
        self._ordered: Optional[tuple[Node, ...]] = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def in_document_order(self) -> tuple[Node, ...]:
        """Members sorted by document order (cached)."""
        if self._ordered is None:
            self._ordered = tuple(sorted(self._nodes, key=lambda n: n.order))
        return self._ordered

    def first(self) -> Optional[Node]:
        """first_<doc — the first member in document order, or ``None``."""
        ordered = self.in_document_order()
        return ordered[0] if ordered else None

    def as_set(self) -> frozenset[Node]:
        return self._nodes

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "NodeSet") -> "NodeSet":
        return NodeSet(self._nodes | other._nodes)

    def intersection(self, other: "NodeSet") -> "NodeSet":
        return NodeSet(self._nodes & other._nodes)

    def difference(self, other: "NodeSet") -> "NodeSet":
        return NodeSet(self._nodes - other._nodes)

    def __or__(self, other: "NodeSet") -> "NodeSet":
        return self.union(other)

    def __and__(self, other: "NodeSet") -> "NodeSet":
        return self.intersection(other)

    def __sub__(self, other: "NodeSet") -> "NodeSet":
        return self.difference(other)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __bool__(self) -> bool:
        return bool(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.in_document_order())

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NodeSet):
            return self._nodes == other._nodes
        if isinstance(other, (set, frozenset)):
            return self._nodes == frozenset(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(node) for node in list(self.in_document_order())[:4])
        suffix = ", …" if len(self) > 4 else ""
        return f"NodeSet({{{preview}{suffix}}})"


#: Union of the Python types an XPath value may take.
XPathValue = Union[float, str, bool, NodeSet]


def value_type(value: XPathValue) -> ValueType:
    """The XPath type of a runtime value."""
    if isinstance(value, bool):
        return ValueType.BOOLEAN
    if isinstance(value, (int, float)):
        return ValueType.NUMBER
    if isinstance(value, str):
        return ValueType.STRING
    if isinstance(value, NodeSet):
        return ValueType.NODE_SET
    raise TypeError(f"not an XPath value: {value!r}")


# ----------------------------------------------------------------------
# Conversions (Table II: F[[number]], F[[string]], F[[boolean]])
# ----------------------------------------------------------------------
def to_number(value: XPathValue) -> float:
    """Convert any XPath value to a number (F[[number : T → num]])."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return string_to_number(value)
    if isinstance(value, NodeSet):
        return string_to_number(to_string(value))
    raise TypeError(f"cannot convert {value!r} to a number")


def string_to_number(text: str) -> float:
    """The ``to_number`` lexical rule: optional sign, digits, optional fraction."""
    stripped = text.strip()
    if not stripped:
        return math.nan
    try:
        return float(stripped)
    except ValueError:
        return math.nan


def to_string(value: XPathValue) -> str:
    """Convert any XPath value to a string (F[[string : T → str]])."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return format_number(float(value))
    if isinstance(value, str):
        return value
    if isinstance(value, NodeSet):
        first = value.first()
        return "" if first is None else first.string_value()
    raise TypeError(f"cannot convert {value!r} to a string")


def format_number(number: float) -> str:
    """``to_string`` for numbers, following the XPath lexical rules.

    Integers are rendered without a decimal point or exponent; NaN and the
    infinities use the spec spellings.
    """
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "Infinity" if number > 0 else "-Infinity"
    if number == 0:
        return "0"
    if number == int(number) and abs(number) < 1e16:
        return str(int(number))
    text = repr(number)
    # Python may use exponent notation for very small/large magnitudes;
    # expand it losslessly, since XPath number-to-string never uses exponents.
    if "e" in text or "E" in text:
        from decimal import Decimal

        text = format(Decimal(text), "f")
        if "." in text:
            text = text.rstrip("0").rstrip(".")
    return text


def to_boolean(value: XPathValue) -> bool:
    """Convert any XPath value to a boolean (F[[boolean : T → bool]])."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        number = float(value)
        return not (number == 0 or math.isnan(number))
    if isinstance(value, str):
        return value != ""
    if isinstance(value, NodeSet):
        return len(value) > 0
    raise TypeError(f"cannot convert {value!r} to a boolean")


def node_string_value(node: Node) -> str:
    """strval(x): the string value of a single node (paper Section 4)."""
    return node.string_value()


def node_number_value(node: Node) -> float:
    """to_number(strval(x)) — used by sum() and nset comparisons."""
    return string_to_number(node.string_value())


def predicate_truth(value: XPathValue, position: int) -> bool:
    """The truth of a predicate value relative to a context position.

    The XPath rule: a number predicate is true iff it equals the context
    position; anything else is taken through boolean().  The normaliser
    rewrites statically-known numeric predicates to ``position() = e``
    (paper Section 5), so this runtime rule only matters for dynamically
    numeric values (e.g. variables).
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value) == float(position)
    return to_boolean(value)
