"""Shared fixtures for the test suite.

Keeps the package importable even when the editable install is unavailable
(offline machines) by putting ``src/`` on ``sys.path``, and provides the
documents most tests share: the paper's DOC(i) / DOC'(i) families, the
Figure-8 worked-example document and a couple of richer trees.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.workloads.documents import (  # noqa: E402
    doc_figure8,
    doc_flat,
    doc_flat_text,
    doc_idref,
    doc_library,
)
from repro.xmlmodel.parser import parse_xml  # noqa: E402


@pytest.fixture
def doc2():
    """DOC(2) — the Experiment-1 document ⟨a⟩⟨b/⟩⟨b/⟩⟨/a⟩."""
    return doc_flat(2)


@pytest.fixture
def doc4():
    """DOC(4) — the Example 4.1 / 6.4 document."""
    return doc_flat(4)


@pytest.fixture
def doc_prime3():
    """DOC'(3) — three ⟨b⟩c⟨/b⟩ children."""
    return doc_flat_text(3)


@pytest.fixture
def figure8():
    """The Figure-8 worked-example document (Examples 8.1 and 11.2)."""
    return doc_figure8()


@pytest.fixture
def idref_doc():
    """The ID/IDREF document of Theorem 10.7's proof."""
    return doc_idref()


@pytest.fixture
def library():
    """A small digital-library document for domain-flavoured tests."""
    return doc_library(books=12, seed=3)


@pytest.fixture
def mixed_doc():
    """A document exercising every node type (comments, PIs, attributes…)."""
    text = (
        "<?xml version='1.0'?>"
        "<root lang='en'>"
        "<!-- a comment -->"
        "<?target data?>"
        "<section id='s1' class='intro'>"
        "Hello <em>world</em> text"
        "</section>"
        "<section id='s2'><p>Second</p><p>Third</p></section>"
        "</root>"
    )
    return parse_xml(text)
