"""Tests for the public API, the workload generators and the benchmark harness."""

from __future__ import annotations

import math

import pytest

import repro
from repro.benchmarking.harness import (
    doubling_like,
    growth_ratios,
    run_series,
    time_query,
)
from repro.benchmarking.reporting import format_seconds, render_series_summary, render_table
from repro.benchmarking import experiments
from repro.engines import NaiveEngine, TopDownEngine
from repro.errors import XPathEvaluationError
from repro.workloads.documents import (
    doc_deep,
    doc_deep_source,
    doc_flat,
    doc_flat_source,
    doc_flat_text,
    doc_flat_text_source,
    doc_library,
    random_document,
)
from repro.workloads.queries import (
    experiment1_query,
    experiment2_query,
    experiment3_query,
    experiment4_query,
    experiment5_descendant_query,
    experiment5_following_query,
)
from repro.xmlmodel.parser import parse_xml
from repro.xpath.context import Context, context_domain


class TestPublicApi:
    def test_parse_and_select(self):
        doc = repro.parse("<a><b>1</b><b>2</b></a>")
        assert [n.string_value() for n in repro.select("//b", doc)] == ["1", "2"]

    def test_evaluate_scalar(self):
        doc = repro.parse("<a><b>1</b><b>2</b></a>")
        assert repro.evaluate("count(//b)", doc) == 2.0
        assert repro.evaluate("sum(//b)", doc) == 3.0

    def test_engine_names_and_registry(self):
        names = repro.engine_names()
        assert "naive" in names and "topdown" in names and "corexpath" in names
        assert "compiled" in names
        assert len(names) == len(repro.ENGINE_CLASSES) == 9

    def test_get_engine_unknown(self):
        with pytest.raises(XPathEvaluationError):
            repro.get_engine("quantum")

    def test_engine_parameter(self):
        doc = repro.parse("<a><b/><b/></a>")
        assert repro.evaluate("count(//b)", doc, engine="mincontext") == 2.0
        assert repro.evaluate("count(//b)", doc, engine="naive") == 2.0

    def test_auto_engine(self):
        doc = repro.parse("<a><b/><b/></a>")
        assert len(repro.select("//b", doc, engine="auto")) == 2

    def test_engine_for_query_prefers_fragment_engines(self):
        assert repro.engine_for_query("//a/b").name == "corexpath"
        assert repro.engine_for_query("//a[count(b) = 1]").name == "optmincontext"

    def test_classify_query(self):
        result = repro.classify_query("//a/b")
        assert result.fragment.value == "Core XPath"

    def test_variables_through_api(self):
        doc = repro.parse("<a/>")
        assert repro.evaluate("$x * 2", doc, variables={"x": 21.0}) == 42.0

    def test_context_argument(self):
        doc = repro.parse("<a><b><c/></b></a>")
        b = doc.document_element.children[0]
        assert [n.name for n in repro.select("child::*", doc, b)] == ["c"]


class TestWorkloadDocuments:
    def test_doc_flat_node_count(self):
        """DOC(i) has i+1 element nodes (paper Section 2)."""
        for size in (0, 2, 10):
            document = doc_flat(size)
            elements = [n for n in document.dom if n.is_element]
            assert len(elements) == size + 1

    def test_doc_flat_text_structure(self):
        document = doc_flat_text(4)
        bs = document.document_element.children
        assert len(bs) == 4
        assert all(b.string_value() == "c" for b in bs)

    def test_doc_deep_depth(self):
        document = doc_deep(7)
        depth = 0
        node = document.document_element
        while node is not None:
            depth += 1
            node = node.children[0] if node.children else None
        assert depth == 7

    def test_doc_deep_requires_positive_depth(self):
        with pytest.raises(ValueError):
            doc_deep(0)

    def test_sources_parse_to_same_shape(self):
        assert len(parse_xml(doc_flat_source(3))) == len(doc_flat(3))
        assert len(parse_xml(doc_flat_text_source(3))) == len(doc_flat_text(3))
        assert len(parse_xml(doc_deep_source(3))) == len(doc_deep(3))

    def test_doc_library_ids_resolve(self):
        document = doc_library(books=10, seed=2)
        assert document.element_by_id("bk3") is not None
        related = repro.select("//related", document)
        for node in related:
            for token in node.string_value().split():
                assert document.element_by_id(token) is not None

    def test_random_document_is_deterministic(self):
        assert len(random_document(5)) == len(random_document(5))
        assert len(random_document(5)) >= 2


class TestWorkloadQueries:
    def test_experiment1_matches_paper_example(self):
        assert experiment1_query(1) == "//a/b"
        assert experiment1_query(3) == "//a/b/parent::a/b/parent::a/b"

    def test_experiment2_matches_paper_example(self):
        assert experiment2_query(1) == "//*[parent::a/child::* = 'c']"
        assert (
            experiment2_query(2)
            == "//*[parent::a/child::*[parent::a/child::* = 'c'] = 'c']"
        )

    def test_experiment3_matches_paper_example(self):
        assert experiment3_query(1) == "//a/b[count(parent::a/b) > 1]"
        assert (
            experiment3_query(2)
            == "//a/b[count(parent::a/b[count(parent::a/b) > 1]) > 1]"
        )

    def test_experiment4_matches_paper_example(self):
        expected = "//a//b[ancestor::a//b[ancestor::a//b]/ancestor::a//b]/ancestor::a//b"
        assert experiment4_query(2) == expected
        assert experiment4_query(0) == "//a//b"

    def test_experiment5_queries(self):
        assert experiment5_following_query(1) == "count(//b)"
        assert experiment5_following_query(3) == "count(//b/following::b/following::b)"
        assert experiment5_descendant_query(2) == "count(//b//b)"

    def test_query_sizes_grow_linearly(self):
        lengths = [len(experiment3_query(size)) for size in (1, 2, 3, 4)]
        diffs = {b - a for a, b in zip(lengths, lengths[1:])}
        assert len(diffs) == 1  # constant increment per nesting level

    def test_all_generated_queries_parse(self):
        from repro.xpath.normalize import compile_query

        for size in (1, 2, 3):
            for generator in (
                experiment1_query,
                experiment2_query,
                experiment3_query,
                experiment5_following_query,
                experiment5_descendant_query,
            ):
                compile_query(generator(size))
        compile_query(experiment4_query(3))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            experiment1_query(0)
        with pytest.raises(ValueError):
            experiment4_query(-1)


class TestContextDomain:
    def test_context_validation(self, figure8):
        with pytest.raises(ValueError):
            Context(figure8.root, 2, 1)

    def test_context_domain_size(self):
        document = doc_flat(1)  # 3 nodes
        contexts = list(context_domain(document))
        n = len(document)
        assert len(contexts) == n * n * (n + 1) / 2

    def test_context_domain_max_size(self):
        document = doc_flat(3)
        contexts = list(context_domain(document, max_size=2))
        assert all(c.size <= 2 for c in contexts)


class TestHarness:
    def test_time_query_measures_and_counts(self, figure8):
        measurement = time_query(TopDownEngine(), "//c", figure8)
        assert measurement.seconds >= 0
        assert measurement.work > 0
        assert measurement.result_size == 3

    def test_run_series_cut_off(self):
        document = doc_flat(2)
        result = run_series(
            "T",
            "tiny",
            "query size",
            [1, 2, 3],
            [NaiveEngine()],
            query_for=experiment1_query,
            document_for=lambda _s: document,
            per_point_budget=0.0,  # force an immediate cut-off
        )
        series = result.series[0]
        assert series.cut_off_at == 1
        assert len(series.points) == 1

    def test_growth_ratios_and_doubling(self):
        assert growth_ratios([1, 2, 4, 8]) == [2, 2, 2]
        assert doubling_like([1, 2, 4, 8, 16])
        assert not doubling_like([10, 11, 12, 13])

    def test_format_seconds(self):
        assert format_seconds(0.0000001).endswith("µs")
        assert format_seconds(0.01).endswith("ms")
        assert format_seconds(2.5) == "2.50s"

    def test_render_table_and_summary(self):
        document = doc_flat(2)
        result = run_series(
            "T",
            "tiny experiment",
            "query size",
            [1, 2],
            [NaiveEngine(), TopDownEngine()],
            query_for=experiment1_query,
            document_for=lambda _s: document,
        )
        table = render_table(result, show_work=True)
        assert "tiny experiment" in table
        assert "naive [s]" in table and "topdown [ops]" in table
        summary = render_series_summary(result.series[0])
        assert "naive" in summary


class TestExperimentDrivers:
    """Smoke tests: tiny instances of every driver produce sane results."""

    def test_experiment1_driver(self):
        result = experiments.experiment1(sizes=(1, 2, 3), per_point_budget=5.0)
        assert {series.engine_name for series in result.series} == {
            "naive",
            "topdown",
            "mincontext",
        }
        naive = result.series_for("naive")
        assert len(naive.points) == 3

    def test_table5_driver_shows_separation(self):
        result = experiments.table5_datapool(sizes=(1, 2, 3), document_size=5)
        naive_work = result.series_for("naive").work_by_parameter()
        pooled_work = result.series_for("datapool").work_by_parameter()
        assert naive_work[3] > pooled_work[3]

    def test_figure1_driver(self):
        result = experiments.figure1_fragments(sizes=(1, 2), document_size=20)
        assert result.series_for("corexpath").points
        assert result.series_for("optmincontext").points

    def test_fragment_classification_report(self):
        report = experiments.fragment_classification_report()
        assert any(fragment == "Core XPath" for _q, fragment in report)
        assert any(fragment == "Full XPath" for _q, fragment in report)

    def test_table7_driver(self):
        results = experiments.table7(sizes=(1, 2), document_sizes=(5,))
        assert len(results) == 1
        assert results[0].series_for("topdown").points

    def test_series_results_are_finite(self):
        result = experiments.experiment5_descendant(sizes=(1, 2), depth=5)
        for series in result.series:
            for point in series.points:
                assert math.isfinite(point.seconds)

    def test_session_overhead_driver(self):
        result = experiments.session_overhead_experiment(
            repetitions=(5,), document_size=5
        )
        assert {series.engine_name for series in result.series} == {"raw", "session"}
        for series in result.series:
            assert all(math.isfinite(point.seconds) for point in series.points)
