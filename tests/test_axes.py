"""Tests for primitive relations, Table I definitions, Algorithm 3.2 and the
direct typed axis functions (paper Section 3 and 4)."""

from __future__ import annotations

import pytest

from repro.axes.algorithm32 import eval_axis
from repro.axes.functions import (
    axis_nodes,
    axis_set,
    inverse_axis_set,
    navigation_index,
    proximity_sorted,
    step_candidates,
)
from repro.axes.nodetests import ANY_NODE, KindTest, NameTest
from repro.axes.primitives import (
    Primitive,
    firstchild,
    firstchild_inverse,
    nextsibling,
    nextsibling_inverse,
    primitive_pairs,
)
from repro.axes.regex import AXIS_INVERSES, Axis, axis_by_name, inverse_axis, is_reverse_axis
from repro.xmlmodel.parser import parse_xml

UNTYPED_AXES = [
    Axis.SELF,
    Axis.CHILD,
    Axis.PARENT,
    Axis.DESCENDANT,
    Axis.ANCESTOR,
    Axis.DESCENDANT_OR_SELF,
    Axis.ANCESTOR_OR_SELF,
    Axis.FOLLOWING,
    Axis.PRECEDING,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
]


@pytest.fixture
def tree():
    return parse_xml("<a><b><d/><e>t</e></b><c><f/></c></a>")


def element(doc, name):
    for node in doc.dom:
        if node.is_element and node.name == name:
            return node
    raise AssertionError(f"no element {name}")


class TestPrimitives:
    def test_firstchild(self, tree):
        a = element(tree, "a")
        assert firstchild(a).name == "b"
        assert firstchild(element(tree, "d")) is None

    def test_nextsibling(self, tree):
        assert nextsibling(element(tree, "b")).name == "c"
        assert nextsibling(element(tree, "c")) is None

    def test_inverses(self, tree):
        b, c = element(tree, "b"), element(tree, "c")
        assert firstchild_inverse(b).name == "a"
        assert firstchild_inverse(c) is None
        assert nextsibling_inverse(c) is b
        assert nextsibling_inverse(b) is None

    def test_primitive_pairs_cover_all_edges(self, tree):
        pairs = primitive_pairs(Primitive.FIRSTCHILD, tree.dom)
        assert all(image.parent is node for node, image in pairs)
        # |firstchild relation| equals the number of non-leaf nodes.
        non_leaves = sum(1 for node in tree.dom if node.child0_sequence())
        assert len(pairs) == non_leaves


class TestAxisRegexEvaluator:
    """Algorithm 3.2 against hand-computed expectations."""

    def test_child_axis(self, tree):
        a = element(tree, "a")
        assert {n.name for n in eval_axis({a}, Axis.CHILD)} == {"b", "c"}

    def test_descendant_axis(self, tree):
        a = element(tree, "a")
        names = {n.name for n in eval_axis({a}, Axis.DESCENDANT) if n.is_element}
        assert names == {"b", "c", "d", "e", "f"}

    def test_ancestor_axis(self, tree):
        d = element(tree, "d")
        result = eval_axis({d}, Axis.ANCESTOR)
        assert {n.name for n in result if n.is_element} == {"a", "b"}
        assert tree.root in result

    def test_following_axis(self, tree):
        d = element(tree, "d")
        names = {n.name for n in eval_axis({d}, Axis.FOLLOWING) if n.is_element}
        assert names == {"e", "c", "f"}

    def test_preceding_axis(self, tree):
        f = element(tree, "f")
        names = {n.name for n in eval_axis({f}, Axis.PRECEDING) if n.is_element}
        assert names == {"b", "d", "e"}

    def test_sibling_axes(self, tree):
        b = element(tree, "b")
        assert {n.name for n in eval_axis({b}, Axis.FOLLOWING_SIBLING)} == {"c"}
        assert eval_axis({b}, Axis.PRECEDING_SIBLING) == set()

    def test_self_axis(self, tree):
        b = element(tree, "b")
        assert eval_axis({b}, Axis.SELF) == {b}

    def test_applies_to_sets(self, tree):
        b, c = element(tree, "b"), element(tree, "c")
        result = eval_axis({b, c}, Axis.CHILD)
        assert {n.name for n in result if n.is_element} == {"d", "e", "f"}

    @pytest.mark.parametrize("axis", UNTYPED_AXES)
    def test_agreement_with_direct_functions(self, tree, axis):
        """Algorithm 3.2 (untyped) agrees with the typed direct functions on
        element context nodes (no attribute/namespace nodes in this tree)."""
        for node in tree.dom:
            if node.node_type.value not in ("element", "root"):
                continue
            regex_result = {
                n for n in eval_axis({node}, axis) if not n.is_special_child
            }
            direct_result = set(axis_nodes(node, axis))
            assert regex_result == direct_result, (node, axis)


class TestAxisInverses:
    @pytest.mark.parametrize("axis", UNTYPED_AXES)
    def test_lemma_10_1(self, tree, axis):
        """x χ y iff y χ⁻¹ x, for every pair of (non-special) nodes."""
        inverse = inverse_axis(axis)
        nodes = [n for n in tree.dom if not n.is_special_child]
        for x in nodes:
            forward = set(axis_nodes(x, axis))
            for y in nodes:
                assert (y in forward) == (x in set(axis_nodes(y, inverse)))

    def test_inverse_table_is_involutive(self):
        for axis, inverse in AXIS_INVERSES.items():
            if axis in (Axis.ATTRIBUTE, Axis.NAMESPACE):
                continue
            assert AXIS_INVERSES[inverse] is axis

    def test_axis_by_name(self):
        assert axis_by_name("following-sibling") is Axis.FOLLOWING_SIBLING
        with pytest.raises(KeyError):
            axis_by_name("sideways")

    def test_reverse_axes(self):
        assert is_reverse_axis(Axis.ANCESTOR)
        assert is_reverse_axis(Axis.PRECEDING_SIBLING)
        assert not is_reverse_axis(Axis.DESCENDANT)


class TestTypedAxes:
    def test_attribute_axis(self):
        doc = parse_xml('<a x="1" y="2"><b z="3"/></a>')
        a = doc.document_element
        assert {n.name for n in axis_nodes(a, Axis.ATTRIBUTE)} == {"x", "y"}
        assert axis_nodes(a.children[0], Axis.ATTRIBUTE)[0].name == "z"

    def test_attributes_excluded_from_child_and_descendant(self):
        doc = parse_xml('<a x="1"><b y="2"/></a>')
        a = doc.document_element
        assert all(not n.is_attribute for n in axis_nodes(a, Axis.CHILD))
        assert all(not n.is_attribute for n in axis_nodes(a, Axis.DESCENDANT))

    def test_parent_of_attribute_is_element(self):
        doc = parse_xml('<a x="1"/>')
        attr = doc.document_element.attribute("x")
        assert axis_nodes(attr, Axis.PARENT) == [doc.document_element]

    def test_namespace_axis(self):
        doc = parse_xml('<a xmlns:p="urn:p"/>')
        a = doc.document_element
        assert [n.name for n in axis_nodes(a, Axis.NAMESPACE)] == ["p"]

    def test_proximity_sorted_reverse_axis(self, tree):
        f = element(tree, "f")
        preceding = axis_nodes(f, Axis.PRECEDING)
        ordered = proximity_sorted(preceding, Axis.PRECEDING)
        # Reverse document order: the nearest preceding node comes first.
        assert ordered[0].order > ordered[-1].order

    def test_step_candidates_name_filter(self, tree):
        a = element(tree, "a")
        assert [n.name for n in step_candidates(a, Axis.CHILD, NameTest("b"))] == ["b"]
        assert [n.name for n in step_candidates(a, Axis.CHILD, NameTest(None))] == ["b", "c"]

    def test_step_candidates_kind_filter(self, tree):
        e = element(tree, "e")
        texts = step_candidates(e, Axis.CHILD, KindTest("text"))
        assert len(texts) == 1 and texts[0].value == "t"


class TestSetAtATimeAxes:
    @pytest.mark.parametrize("axis", UNTYPED_AXES)
    def test_axis_set_equals_union_of_node_at_a_time(self, tree, axis):
        sources = [n for n in tree.dom if n.is_element][:4]
        expected: set = set()
        for node in sources:
            expected.update(axis_nodes(node, axis))
        assert axis_set(tree, sources, axis) == expected

    def test_axis_set_empty_input(self, tree):
        assert axis_set(tree, [], Axis.DESCENDANT) == set()

    def test_inverse_axis_set(self, tree):
        d = element(tree, "d")
        result = inverse_axis_set(tree, {d}, Axis.CHILD)
        assert {n.name for n in result} == {"b"}

    def test_navigation_index_subtree_end(self, tree):
        index = navigation_index(tree)
        a = element(tree, "a")
        assert index.subtree_end[a.order] == max(n.order for n in tree.dom)
        d = element(tree, "d")
        assert index.subtree_end[d.order] == d.order

    def test_navigation_index_cached(self, tree):
        assert navigation_index(tree) is navigation_index(tree)
        # The index lives on the document itself, not in a module-level cache.
        assert navigation_index(tree) is tree.index

    def test_following_set_matches_definition(self, tree):
        d = element(tree, "d")
        assert axis_set(tree, {d}, Axis.FOLLOWING) == set(axis_nodes(d, Axis.FOLLOWING))


class TestNodeTests:
    def test_name_test_matches(self, tree):
        b = element(tree, "b")
        assert NameTest("b").matches(b, Axis.CHILD)
        assert not NameTest("c").matches(b, Axis.CHILD)
        assert NameTest(None).matches(b, Axis.CHILD)

    def test_name_test_respects_principal_node_type(self):
        doc = parse_xml('<a href="x"/>')
        attr = doc.document_element.attribute("href")
        assert NameTest("href").matches(attr, Axis.ATTRIBUTE)
        assert not NameTest("href").matches(attr, Axis.CHILD)

    def test_kind_tests(self, tree):
        text = element(tree, "e").children[0]
        assert KindTest("text").matches(text, Axis.CHILD)
        assert not KindTest("comment").matches(text, Axis.CHILD)
        assert ANY_NODE.matches(text, Axis.CHILD)

    def test_processing_instruction_target(self):
        doc = parse_xml("<a><?one x?><?two y?></a>")
        pis = doc.document_element.children
        assert KindTest("processing-instruction", "one").matches(pis[0], Axis.CHILD)
        assert not KindTest("processing-instruction", "one").matches(pis[1], Axis.CHILD)

    def test_select_uses_indexes(self, tree):
        result = NameTest("b").select(tree, Axis.CHILD)
        assert {n.name for n in result} == {"b"}
        assert ANY_NODE.select(tree, Axis.CHILD) == tree.dom_set
