"""Differential property tests for the document-order indexed axis layer.

The indexed implementations in :mod:`repro.axes.functions` (interval queries
and posting-list intersections over :class:`repro.xmlmodel.index.DocumentIndex`)
must be node-for-node identical to the retained pre-index reference
implementations in :mod:`repro.axes.reference` — across all thirteen axes,
for every context node of random documents, including attribute and namespace
context nodes (the Section 4 typing edge cases).

The :class:`OrderSet` / :class:`NodeSet` merge-based algebra is likewise
checked against plain ``frozenset`` semantics.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.axes.functions import (
    axis_nodes,
    axis_set,
    axis_test_set,
    proximity_order,
    proximity_sorted,
    step_candidates,
)
from repro.axes.nodetests import ANY_NAME, ANY_NODE, KindTest, NameTest
from repro.axes.reference import reference_axis_nodes, reference_axis_set
from repro.axes.regex import Axis
from repro.workloads.documents import random_document
from repro.xpath.values import NodeSet, OrderSet

ALL_AXES = list(Axis)

#: Node tests covering the posting-list fast paths and the generic fallback.
NODE_TESTS = [
    NameTest("a"),
    NameTest("b"),
    NameTest("nope"),
    ANY_NAME,
    ANY_NODE,
    KindTest("text"),
    KindTest("comment"),
]

documents = st.builds(
    random_document,
    seed=st.integers(min_value=0, max_value=10_000),
    max_depth=st.integers(min_value=1, max_value=4),
    max_children=st.integers(min_value=1, max_value=4),
    with_namespaces=st.booleans(),
)


@settings(max_examples=40, deadline=None)
@given(documents, st.sampled_from(ALL_AXES))
def test_indexed_axis_nodes_matches_reference(document, axis):
    """axis_nodes agrees with the structural-walk reference on every context
    node, including attribute and namespace nodes, and preserves order."""
    for node in document.dom:
        assert axis_nodes(node, axis) == reference_axis_nodes(node, axis), (node, axis)


@settings(max_examples=40, deadline=None)
@given(
    documents,
    st.sampled_from(ALL_AXES),
    st.integers(min_value=0, max_value=10_000),
)
def test_indexed_axis_set_matches_reference(document, axis, seed):
    """axis_set agrees with the reference on random subsets of dom (special
    context nodes included)."""
    rng = random.Random(seed)
    sample = [node for node in document.dom if rng.random() < 0.35]
    if not sample:
        sample = [document.root]
    assert axis_set(document, sample, axis) == reference_axis_set(document, sample, axis)


@settings(max_examples=40, deadline=None)
@given(documents, st.sampled_from(ALL_AXES), st.sampled_from(NODE_TESTS))
def test_step_candidates_matches_filtered_reference(document, axis, test):
    """The posting-list fast paths of step_candidates agree with filtering
    the reference axis result through NodeTest.matches."""
    for node in document.dom:
        expected = [
            candidate
            for candidate in reference_axis_nodes(node, axis)
            if test.matches(candidate, axis)
        ]
        assert step_candidates(node, axis, test) == expected, (node, axis, test)


@settings(max_examples=40, deadline=None)
@given(
    documents,
    st.sampled_from(ALL_AXES),
    st.sampled_from(NODE_TESTS),
    st.integers(min_value=0, max_value=10_000),
)
def test_axis_test_set_matches_filtered_reference(document, axis, test, seed):
    rng = random.Random(seed)
    sample = [node for node in document.dom if rng.random() < 0.35]
    if not sample:
        sample = [document.root]
    expected = {
        node
        for node in reference_axis_set(document, sample, axis)
        if test.matches(node, axis)
    }
    assert axis_test_set(document, sample, axis, test) == expected


@settings(max_examples=40, deadline=None)
@given(documents, st.sampled_from(ALL_AXES))
def test_proximity_order_equals_proximity_sorted(document, axis):
    """For document-ordered input (what step_candidates produces), the O(n)
    reversal agrees with the general sort."""
    for node in document.dom:
        candidates = axis_nodes(node, axis)
        assert proximity_order(candidates, axis) == proximity_sorted(candidates, axis)


# ----------------------------------------------------------------------
# OrderSet / NodeSet merge algebra
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    documents,
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
def test_order_set_algebra_matches_set_semantics(document, seed_a, seed_b):
    rng_a, rng_b = random.Random(seed_a), random.Random(seed_b)
    sample_a = [node for node in document.dom if rng_a.random() < 0.5]
    sample_b = [node for node in document.dom if rng_b.random() < 0.5]
    order_a, order_b = OrderSet(sample_a), OrderSet(sample_b)
    set_a, set_b = frozenset(sample_a), frozenset(sample_b)

    assert order_a == set_a
    assert (order_a | order_b) == (set_a | set_b)
    assert (order_a & order_b) == (set_a & set_b)
    assert (order_a - order_b) == (set_a - set_b)
    # Merge results stay sorted by document order and duplicate-free.
    for result in (order_a | order_b, order_a & order_b, order_a - order_b):
        orders = [node.order for node in result]
        assert orders == sorted(set(orders))


@settings(max_examples=60, deadline=None)
@given(
    documents,
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
def test_node_set_merge_paths_match_set_paths(document, seed_a, seed_b):
    """NodeSet algebra must give identical results whether the operands carry
    the ordered view (merge path) or only the frozenset view."""
    rng_a, rng_b = random.Random(seed_a), random.Random(seed_b)
    sample_a = [node for node in document.dom if rng_a.random() < 0.5]
    sample_b = [node for node in document.dom if rng_b.random() < 0.5]

    plain_a, plain_b = NodeSet(sample_a), NodeSet(sample_b)
    ordered_a = NodeSet(OrderSet(sample_a))
    ordered_b = NodeSet(OrderSet(sample_b))

    for op in ("union", "intersection", "difference"):
        merged = getattr(ordered_a, op)(ordered_b)
        plain = getattr(plain_a, op)(plain_b)
        assert merged == plain
        assert merged.in_document_order() == plain.in_document_order()
        assert hash(merged) == hash(plain)
    assert ordered_a.as_set() == plain_a.as_set()
    assert ordered_a.first() is plain_a.first()
    assert len(ordered_a) == len(plain_a)
    assert list(ordered_a) == list(plain_a)
