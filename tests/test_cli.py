"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, run

CATALOG = "<catalog><book id='b1'><price>55</price></book><book id='b2'><price>30</price></book></catalog>"


@pytest.fixture
def catalog_file(tmp_path):
    path = tmp_path / "catalog.xml"
    path.write_text(CATALOG, encoding="utf-8")
    return str(path)


class TestCli:
    def test_scalar_query_from_file(self, catalog_file, capsys):
        assert run(["count(//book)", catalog_file]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_node_set_query_output(self, catalog_file, capsys):
        assert run(["//book[price < 60]", catalog_file]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all("book" in line for line in lines)

    def test_stdin_input(self, capsys):
        assert run(["string(//b)"], stdin="<a><b>hi</b></a>") == 0
        assert capsys.readouterr().out.strip() == "hi"

    def test_xml_output(self, catalog_file, capsys):
        assert run(["//book[1]", catalog_file, "--xml"]) == 0
        assert capsys.readouterr().out.startswith("<book")

    def test_engine_selection(self, catalog_file, capsys):
        assert run(["//book", catalog_file, "--engine", "mincontext"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_auto_engine(self, catalog_file, capsys):
        assert run(["//book/price", catalog_file, "--engine", "auto"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_classify_flag(self, catalog_file, capsys):
        assert run(["//book", catalog_file, "--classify"]) == 0
        out = capsys.readouterr().out
        assert "fragment:" in out and "Core XPath" in out

    def test_stats_flag(self, catalog_file, capsys):
        assert run(["count(//book)", catalog_file, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "expression_evaluations" in captured.err

    def test_bad_query_returns_error_code(self, catalog_file, capsys):
        assert run(["//book[", catalog_file]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_returns_error_code(self, capsys):
        assert run(["//a", "/nonexistent/file.xml"]) == 2

    def test_malformed_document_returns_error_code(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<a><b></a>", encoding="utf-8")
        assert run(["//a", str(path)]) == 1

    def test_parser_help_mentions_engines(self):
        parser = build_parser()
        assert any(
            "engine" in action.dest for action in parser._actions
        )


class TestCliStream:
    def test_stream_prints_matches(self, capsys):
        assert run(["//b", "--stream"], stdin="<a><b>x</b><b/></a>") == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("2\tb")

    def test_stream_classify_reports_streamable(self, capsys):
        assert run(["//b", "--stream", "--classify"], stdin="<a><b/></a>") == 0
        assert "streaming: yes" in capsys.readouterr().out

    def test_stream_falls_back_for_non_streamable_node_set(self, capsys):
        # Reverse axis: not streamable, but the tree fallback prints the
        # same match shape.
        assert run(["//b/parent::a", "--stream"], stdin="<a><b/></a>") == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1 and lines[0].startswith("1\ta")

    def test_stream_falls_back_for_scalar_query(self, capsys):
        # Scalars cannot stream; --stream must still print the value, not
        # fail (the advertised automatic fallback).
        assert run(["count(//b)", "--stream"], stdin="<a><b/><b/></a>") == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_stream_respects_limits(self, capsys):
        assert (
            run(["//b", "--stream", "--max-ops", "2"], stdin="<a><b/><b/></a>")
            == 3
        )
        assert "limit exceeded" in capsys.readouterr().err

    def test_batch_stream_flag(self, tmp_path, capsys):
        paths = []
        for index, source in enumerate(["<a><b/><b/></a>", "<a/>"]):
            path = tmp_path / f"s{index}.xml"
            path.write_text(source, encoding="utf-8")
            paths.append(str(path))
        assert run(["batch", "//b", *paths, "--stream"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].endswith("2 node(s)")
        assert lines[1].endswith("0 node(s)")


class TestCliLimits:
    def test_max_ops_breach_exits_3(self, catalog_file, capsys):
        assert run(["//book", catalog_file, "--engine", "naive", "--max-ops", "1"]) == 3
        assert "limit exceeded:" in capsys.readouterr().err

    def test_max_nodes_breach_exits_3(self, catalog_file, capsys):
        assert run(["//book", catalog_file, "--max-nodes", "1"]) == 3
        assert "limit exceeded:" in capsys.readouterr().err

    def test_within_limits_succeeds(self, catalog_file, capsys):
        assert run(
            ["//book", catalog_file, "--max-ops", "100000", "--max-nodes", "10"]
        ) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2


class TestCliExplain:
    def test_explain_with_file_reports_everything(self, catalog_file, capsys):
        assert run(["explain", "//book", catalog_file]) == 0
        out = capsys.readouterr().out
        assert "query:      //book" in out
        assert "fragment:   Core XPath" in out
        assert "engine:     topdown" in out
        assert "result:     node-set, 2 node(s)" in out
        assert "stats:" in out
        assert "time:" in out

    def test_explain_from_stdin(self, capsys):
        assert run(["explain", "//b"], stdin="<a><b/></a>") == 0
        assert "result:     node-set, 1 node(s)" in capsys.readouterr().out

    def test_explain_plan_only_needs_no_document(self, capsys):
        assert run(["explain", "//a/b[child::c]", "--plan-only"]) == 0
        out = capsys.readouterr().out
        assert "fragment:   Core XPath" in out
        assert "result:" not in out
        assert "time:" not in out

    def test_explain_auto_engine(self, catalog_file, capsys):
        assert run(["explain", "//book", catalog_file, "--engine", "auto"]) == 0
        assert "resolved from 'auto'" in capsys.readouterr().out

    def test_explain_limit_breach_exits_3(self, catalog_file, capsys):
        assert (
            run(["explain", "//book", catalog_file, "--engine", "naive", "--max-ops", "1"])
            == 3
        )
        assert "limit exceeded:" in capsys.readouterr().err

    def test_explain_bad_query_exits_1(self, capsys):
        assert run(["explain", "//book[", "--plan-only"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_double_dash_evaluates_query_named_explain(self, capsys):
        # "--" is the escape hatch for a query literally named "explain".
        assert run(["--", "explain"], stdin="<explain>x</explain>") == 0
        assert "explain\tx" in capsys.readouterr().out


class TestCliBatch:
    @pytest.fixture
    def files(self, tmp_path):
        sources = ["<a><b/><b/></a>", "<a/>", "<a><b>x</b></a>"]
        paths = []
        for index, source in enumerate(sources):
            path = tmp_path / f"doc{index}.xml"
            path.write_text(source, encoding="utf-8")
            paths.append(str(path))
        return paths

    def test_batch_serial(self, files, capsys):
        assert run(["batch", "//b", *files]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].endswith("2 node(s)")
        assert lines[1].endswith("0 node(s)")
        assert lines[2].endswith("1 node(s)")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_batch_jobs_matches_serial(self, files, capsys, backend):
        assert run(["batch", "//b", *files]) == 0
        serial = capsys.readouterr().out
        assert run(["batch", "//b", *files, "--jobs", "2", "--backend", backend]) == 0
        assert capsys.readouterr().out == serial

    def test_batch_scalar_query(self, files, capsys):
        assert run(["batch", "count(//b)", *files, "--jobs", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [line.split("\t")[1] for line in lines] == ["2", "0", "1"]

    def test_batch_isolates_parse_failure(self, files, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b>", encoding="utf-8")
        assert run(["batch", "//b", files[0], str(bad), files[2], "--jobs", "2"]) == 1
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 2  # the good files
        assert "parse error" in captured.err

    def test_batch_limit_breach_exits_3_and_isolates(self, files, capsys):
        big = files[0]
        assert run(["batch", "//b", *files, "--max-ops", "4", "--jobs", "2"]) in (1, 3)
        # Deterministic split whichever backend runs: the two-b file costs 12
        # tree ops (7 streamed), the empty one 6 (2 streamed) — a budget of 6
        # breaches exactly the first under both accountings.
        capsys.readouterr()
        code = run(["batch", "//b", big, files[1], "--max-ops", "6"])
        captured = capsys.readouterr()
        assert code == 3
        assert "operation budget" in captured.err
        assert captured.out.strip().splitlines()  # sibling still reported

    def test_batch_missing_file_is_isolated(self, files, capsys):
        assert run(["batch", "//b", files[0], "/nonexistent.xml"]) == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert len(captured.out.strip().splitlines()) == 1

    def test_batch_engine_flag(self, files, capsys):
        assert run(["batch", "//b", *files, "--engine", "corexpath"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 3

    def test_batch_compiled_engine(self, files, capsys):
        assert run(["batch", "//b", *files, "--engine", "compiled"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 3

    @pytest.mark.parametrize(
        "payload",
        ["<a>&#xZZ;</a>", "<a>&#x110000;</a>", "<a n='&#2;'/>"],
        ids=["malformed", "out-of-range", "illegal-in-attr"],
    )
    def test_batch_isolates_character_reference_failures(
        self, payload, files, tmp_path, capsys
    ):
        # ISSUE-7 regression: these used to escape as raw ValueError,
        # crashing the whole batch instead of isolating one file (exit 1).
        bad = tmp_path / "bad-ref.xml"
        bad.write_text(payload, encoding="utf-8")
        assert run(["batch", "//b", files[0], str(bad), files[2], "--jobs", "2"]) == 1
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 2  # the good files
        assert "error" in captured.err

    def test_batch_resolves_internal_subset_entities(self, tmp_path, capsys):
        path = tmp_path / "dblp.xml"
        path.write_text(
            "<!DOCTYPE dblp [<!ENTITY uuml '&#252;'>]>"
            "<dblp><article>M&uuml;ller</article></dblp>",
            encoding="utf-8",
        )
        assert run(["batch", "//article", str(path)]) == 0
        assert capsys.readouterr().out.strip()


class TestCliBatchFaults:
    """The batch subcommand under injected faults (ISSUE-6 satellite):
    worker crashes, hangs and cancellations drive the exit codes —
    4 = degraded success, 3 = limit breach, 1 = per-file failure."""

    @pytest.fixture
    def files(self, tmp_path):
        sources = ["<a><b/><b/></a>", "<a/>", "<a><b>x</b></a>"]
        paths = []
        for index, source in enumerate(sources):
            path = tmp_path / f"doc{index}.xml"
            path.write_text(source, encoding="utf-8")
            paths.append(str(path))
        return paths

    def test_recovered_crash_exits_4_with_fault_summary(
        self, files, capsys, monkeypatch
    ):
        # The env spec is inherited by worker processes — no plumbing.
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "kill@chunk:index=0,max_attempt=1"
        )
        code = run(
            ["batch", "//b", *files, "--jobs", "2", "--backend", "process",
             "--retries", "2"]
        )
        captured = capsys.readouterr()
        assert code == 4  # every file succeeded, but recovery stepped in
        lines = captured.out.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].endswith("2 node(s)")
        assert "# faults:" in captured.err

    def test_mixed_parse_failure_and_limit_breach_exits_3(
        self, files, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "kill@chunk:index=0,max_attempt=1"
        )
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b>", encoding="utf-8")
        code = run(
            ["batch", "//b", files[0], str(bad), files[1], "--max-ops", "6",
             "--jobs", "2", "--backend", "process", "--retries", "2"]
        )
        captured = capsys.readouterr()
        assert code == 3  # limit breach outranks plain failure and degraded
        assert "operation budget" in captured.err
        assert "parse error" in captured.err

    def test_deadline_converts_hang_to_limit_breach(
        self, files, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "hang@document:index=0,seconds=2.0"
        )
        code = run(
            ["batch", "//b", *files, "--jobs", "2", "--backend", "process",
             "--deadline", "0.4"]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "batch deadline" in captured.err

    def test_fail_fast_reports_cancelled_files(self, files, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "raise@document:index=0")
        # Pin the serial path: parallel fail_fast lets in-flight chunks
        # finish, so under REPRO_PARALLEL_DEFAULT=1 nothing gets cancelled.
        monkeypatch.delenv("REPRO_PARALLEL_DEFAULT", raising=False)
        code = run(["batch", "//b", *files, "--fail-fast"])
        captured = capsys.readouterr()
        assert code == 1
        assert "cancelled" in captured.err
        assert "InjectedFault" in captured.err
