"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, run

CATALOG = "<catalog><book id='b1'><price>55</price></book><book id='b2'><price>30</price></book></catalog>"


@pytest.fixture
def catalog_file(tmp_path):
    path = tmp_path / "catalog.xml"
    path.write_text(CATALOG, encoding="utf-8")
    return str(path)


class TestCli:
    def test_scalar_query_from_file(self, catalog_file, capsys):
        assert run(["count(//book)", catalog_file]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_node_set_query_output(self, catalog_file, capsys):
        assert run(["//book[price < 60]", catalog_file]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all("book" in line for line in lines)

    def test_stdin_input(self, capsys):
        assert run(["string(//b)"], stdin="<a><b>hi</b></a>") == 0
        assert capsys.readouterr().out.strip() == "hi"

    def test_xml_output(self, catalog_file, capsys):
        assert run(["//book[1]", catalog_file, "--xml"]) == 0
        assert capsys.readouterr().out.startswith("<book")

    def test_engine_selection(self, catalog_file, capsys):
        assert run(["//book", catalog_file, "--engine", "mincontext"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_auto_engine(self, catalog_file, capsys):
        assert run(["//book/price", catalog_file, "--engine", "auto"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_classify_flag(self, catalog_file, capsys):
        assert run(["//book", catalog_file, "--classify"]) == 0
        out = capsys.readouterr().out
        assert "fragment:" in out and "Core XPath" in out

    def test_stats_flag(self, catalog_file, capsys):
        assert run(["count(//book)", catalog_file, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "expression_evaluations" in captured.err

    def test_bad_query_returns_error_code(self, catalog_file, capsys):
        assert run(["//book[", catalog_file]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_returns_error_code(self, capsys):
        assert run(["//a", "/nonexistent/file.xml"]) == 2

    def test_malformed_document_returns_error_code(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<a><b></a>", encoding="utf-8")
        assert run(["//a", str(path)]) == 1

    def test_parser_help_mentions_engines(self):
        parser = build_parser()
        assert any(
            "engine" in action.dest for action in parser._actions
        )
