"""Collection batch evaluation semantics.

The acceptance bar: `Collection.select` returns results identical to
per-document `api.select` for every query of `workloads/queries.py`, across
all engines — with per-document error isolation (a failure on one document
must not disturb the others) and stable result ordering.
"""

import pytest

from repro import api
from repro.collection import BatchResult, Collection
from repro.errors import ReproError, VariableBindingError
from repro.workloads.documents import (
    doc_deep,
    doc_figure8,
    doc_flat,
    doc_flat_text,
    doc_idref,
)
from repro.workloads.queries import workload_queries

DOCUMENTS = {
    "flat": doc_flat(4),
    "flat_text": doc_flat_text(3),
    "deep": doc_deep(3),
    "figure8": doc_figure8(),
    "idref": doc_idref(),
}


@pytest.fixture(scope="module")
def collection():
    return Collection(DOCUMENTS.values(), names=list(DOCUMENTS))


class TestCollectionBasics:
    def test_parse_collection_builds_ordered_documents(self):
        docs = api.parse_collection(["<a><b/></a>", "<a><b/><b/></a>"])
        assert len(docs) == 2
        assert [len(r.nodes) for r in docs.select("//b")] == [1, 2]
        assert docs.names == ("doc[0]", "doc[1]")

    def test_names_must_match_documents(self):
        with pytest.raises(ValueError):
            Collection([doc_flat(1)], names=["a", "b"])

    def test_results_arrive_in_collection_order(self, collection):
        results = collection.select("//b")
        assert [r.index for r in results] == list(range(len(collection)))
        assert [r.name for r in results] == list(DOCUMENTS)
        assert [r.document for r in results] == list(collection.documents)

    def test_nodes_in_document_order(self, collection):
        for result in collection.select("//*"):
            assert result.ok
            orders = [node.order for node in result.nodes]
            assert orders == sorted(orders)

    def test_evaluate_returns_values(self, collection):
        results = collection.evaluate("count(//b)")
        assert all(r.ok for r in results)
        assert results[0].value == 4.0  # doc_flat(4)

    def test_select_many_compiles_each_query_once(self, collection):
        cache = api.plan_cache()
        cache.clear()
        reports = collection.select_many(["//b", "//a"])
        assert len(reports) == 2
        assert all(len(report) == len(collection) for report in reports)
        # two compilations total, not two per document
        assert cache.stats.misses == 2

    def test_evaluate_many_orders_by_query(self, collection):
        reports = collection.evaluate_many(["count(//b)", "count(//a)"])
        assert reports[0][0].value == 4.0
        assert reports[1][0].value == 1.0

    def test_compiled_plan_is_accepted_directly(self, collection):
        plan = api.compile_query("//b", engine="auto")
        results = collection.select(plan)
        assert [len(r.nodes) for r in results] == [
            len(api.select("//b", document)) for document in collection
        ]


class TestErrorIsolation:
    def test_unbound_variable_is_isolated_per_document(self, collection):
        # The predicate only evaluates where b-nodes exist, so exactly the
        # documents containing a b fail — and the others still succeed.
        results = collection.select("//b[$missing]")
        has_b = [len(api.select("//b", d)) > 0 for d in collection.documents]
        assert [not r.ok for r in results] == has_b
        assert any(not r.ok for r in results) and any(r.ok for r in results)
        for result in results:
            if not result.ok:
                assert isinstance(result.error, VariableBindingError)
                assert result.nodes is None

    def test_fragment_rejection_does_not_break_batch(self, collection):
        # id() queries are XPatterns, not Core XPath: the corexpath engine
        # rejects them per document while the batch itself completes.
        results = collection.select("id('bk1')/child::title", engine="corexpath")
        assert len(results) == len(collection)
        assert all(not r.ok for r in results)

    def test_partial_failure_keeps_other_documents(self):
        # A scalar query through select(): fails everywhere with the node-set
        # type error, but as isolated BatchResults, not one batch exception.
        docs = api.parse_collection(["<a/>", "<a><b/></a>"])
        results = docs.select("count(//b)")
        assert [r.ok for r in results] == [False, False]
        ok = docs.select("//b")
        assert [len(r.nodes) for r in ok] == [0, 1]

    def test_batch_result_repr_fields(self, collection):
        result = collection.select("//b")[0]
        assert isinstance(result, BatchResult)
        assert result.ok and result.error is None


class TestCollectionMatchesPerDocumentApi:
    """Acceptance: batch results ≡ per-document api.select, all engines."""

    @pytest.mark.parametrize("engine", sorted(api.ENGINE_CLASSES))
    def test_workload_queries_identical_across_engines(self, collection, engine):
        for name, query in workload_queries():
            batch = collection.select(query, engine=engine)
            for result, document in zip(batch, collection.documents):
                try:
                    expected = api.select(query, document, engine=engine)
                except ReproError as error:
                    assert not result.ok, f"{name} on {result.name} ({engine})"
                    assert type(result.error) is type(error)
                else:
                    assert result.ok, f"{name} on {result.name} ({engine}): {result.error}"
                    assert [n.order for n in result.nodes] == [
                        n.order for n in expected
                    ], f"{name} on {result.name} ({engine})"
