"""Unit tests for the compiled array-program backend (ISSUE 7).

The differential fuzz suite (tests/test_fuzz_differential.py) gates the
engine against the eight tree engines and the streaming evaluator; the
tests here pin down the pieces individually: compilability analysis,
lowering, the instruction set, the per-axis array routines, the
IndexArrays column view, fallback behaviour and the explain() wiring.
"""

import pytest

from repro import api
from repro.engines.base import EvalLimits
from repro.engines.compiled import (
    ArrayProgram,
    CompiledEngine,
    analyze_compilability,
    execute_program,
    lower_algebra,
)
from repro.errors import FragmentError, ResourceLimitExceeded
from repro.fragments.algebra import (
    ContextSet,
    DomIfNonempty,
    DomIfRoot,
    DomSet,
    IdApply,
    RootSet,
    UnionOp,
)
from repro.plan import plan_for
from repro.session import XPathSession
from repro.xpath.normalize import compile_query as normalize_query

DOC = api.parse(
    "<a id='r'>"
    "<b n='1'>one<c/>two</b>"
    "<!--note-->"
    "<b n='2'><c><d>deep</d></c></b>"
    "<?pi data?>"
    "<b>three</b>"
    "</a>"
)


def _compiled_orders(query, document=DOC, context=None):
    plan = plan_for(query, engine="compiled", cache=None)
    assert plan.classification.compilable, query
    result = plan.evaluate(document, context=context)
    return [node.order for node in result]


def _reference_orders(query, document=DOC, context=None):
    plan = plan_for(query, engine="topdown", cache=None)
    return [node.order for node in plan.evaluate(document, context=context)]


# ----------------------------------------------------------------------
# Compilability analysis
# ----------------------------------------------------------------------
class TestAnalyzeCompilability:
    def test_core_xpath_is_compilable(self):
        report = analyze_compilability(normalize_query("//b/ancestor::a"))
        assert report.compilable and report.violations == ()

    def test_xpatterns_string_test_is_compilable(self):
        report = analyze_compilability(normalize_query("//b[@n = '2']"))
        assert report.compilable

    def test_position_predicate_is_not(self):
        report = analyze_compilability(normalize_query("//b[position() = 1]"))
        assert not report.compilable
        assert "XPatterns" in report.violations[0]

    def test_id_is_not(self):
        report = analyze_compilability(normalize_query("id('r')/b"))
        assert not report.compilable
        assert "id()" in report.violations[0]

    def test_classification_carries_the_report(self):
        plan = plan_for("//b", cache=None)
        assert plan.classification.compilable
        plan = plan_for("id('r')", cache=None)
        assert not plan.classification.compilable
        assert plan.classification.compile_violations


# ----------------------------------------------------------------------
# Lowering and the program IR
# ----------------------------------------------------------------------
class TestLowering:
    def test_steps_fuse_into_axis_test_instructions(self):
        program = plan_for("//b", cache=None).array_program()
        assert [i.op for i in program.instructions] == ["root", "axis-test", "axis-test"]
        assert len(program) == 3
        assert program.result_register == program.instructions[-1].dest

    def test_program_is_memoised_and_carried_by_retarget(self):
        plan = plan_for("//b/c", engine="topdown", cache=None)
        program = plan.array_program()
        assert plan.array_program() is program
        retargeted = plan_for(plan, engine="compiled", cache=None)
        assert retargeted.array_program() is program

    def test_non_compilable_plan_has_no_program(self):
        assert plan_for("count(//b)", cache=None).array_program() is None

    def test_render_names_registers_and_operands(self):
        text = plan_for("//b[@n = '2']", cache=None).array_program().render()
        assert "axis-test[descendant-or-self]" in text
        assert "strmatch(='2')" in text
        assert text.splitlines()[-1].startswith("result: r")

    def test_negated_string_match_lowered(self):
        text = plan_for("//b[@n != '2']", cache=None).array_program().render()
        assert "strmatch(!='2')" in text

    def test_boolean_predicates_lower_to_set_ops(self):
        text = plan_for("//b[c or not(text())]", cache=None).array_program().render()
        assert "union(" in text and "complement(" in text

    def test_absolute_predicate_lowers_dom_if_root(self):
        text = plan_for("//b[/a]", cache=None).array_program().render()
        assert "dom-if-root(" in text

    def test_id_apply_raises_fragment_error(self):
        with pytest.raises(FragmentError):
            lower_algebra(IdApply(RootSet()))

    def test_unlowerable_leaf_raises_fragment_error(self):
        with pytest.raises(FragmentError):
            lower_algebra(object())

    def test_dom_if_nonempty_lowering_and_execution(self):
        # Only id-starts emit DomIfNonempty and those never compile, so this
        # opcode is exercised through the algebra directly.
        view = DOC.index.arrays()
        program = lower_algebra(DomIfNonempty(RootSet()))
        assert list(execute_program(program, view, (0,))) == list(range(view.size))
        program = lower_algebra(DomIfNonempty(UnionOp(ContextSet(), ContextSet())))
        assert list(execute_program(program, view, ())) == []

    def test_dom_set_and_dom_if_root_execution(self):
        view = DOC.index.arrays()
        assert list(execute_program(lower_algebra(DomSet()), view, (0,))) == list(
            range(view.size)
        )
        # A context set without the root gates dom-if-root to empty.
        program = lower_algebra(DomIfRoot(ContextSet()))
        assert list(execute_program(program, view, (3,))) == []


# ----------------------------------------------------------------------
# Execution semantics: every axis against the reference interpreter
# ----------------------------------------------------------------------
AXIS_QUERIES = [
    "//b/self::b",
    "//c/self::node()",
    "//b/child::node()",
    "//b/child::text()",
    "/a/b/c",
    "//d/parent::c",
    "//text()/parent::b",
    "/descendant::c",
    "/descendant-or-self::b",
    "//b/descendant::*",
    "//d/ancestor::b",
    "//c/ancestor-or-self::node()",
    "//c/following::text()",
    "//b/following::comment()",
    "//c/preceding::c",
    "//d/preceding::node()",
    "//b/following-sibling::b",
    "//b/following-sibling::node()",
    "//b/preceding-sibling::b",
    "//c/preceding-sibling::text()",
    "//b/attribute::n",
    "//b/attribute::*",
    "//b/attribute::node()",
    "//b/attribute::text()",
    "//processing-instruction()",
    "//processing-instruction('pi')",
    "//comment()",
]


@pytest.mark.parametrize("query", AXIS_QUERIES)
def test_axis_semantics_match_reference(query):
    assert _compiled_orders(query) == _reference_orders(query)


PREDICATE_QUERIES = [
    "//b[@n]",
    "//b[@n = '1']",
    "//b[@n != '1']",
    "//b[. = 'three']",
    "//b[not(@n)]",
    "//b[c and text()]",
    "//b[c or @n = '2']",
    "//b[not(following-sibling::b)]",
    "//c[ancestor::b[@n = '2']]",
    "//b[/a]",
    "//b[/a/c]",
]


@pytest.mark.parametrize("query", PREDICATE_QUERIES)
def test_predicate_semantics_match_reference(query):
    assert _compiled_orders(query) == _reference_orders(query)


def test_relative_query_uses_the_context_node():
    b_nodes = api.select("//b", DOC)
    for context in b_nodes:
        for query in ("c", "following-sibling::b", "self::b[@n]"):
            assert _compiled_orders(query, context=context) == _reference_orders(
                query, context=context
            ), (query, context.order)


def test_attribute_context_node():
    attr = api.select("//b/attribute::n", DOC)[0]
    for query in ("self::node()", "ancestor::a", "following::c"):
        assert _compiled_orders(query, context=attr) == _reference_orders(
            query, context=attr
        ), query


def test_empty_results_on_missing_names():
    assert _compiled_orders("//zzz") == []
    assert _compiled_orders("//b[@missing = 'x']") == []


# ----------------------------------------------------------------------
# IndexArrays
# ----------------------------------------------------------------------
class TestIndexArrays:
    def test_columns_mirror_the_node_table(self):
        index = DOC.index
        view = index.arrays()
        assert view.size == len(index.nodes)
        for node in index.nodes:
            expected = node.parent.order if node.parent is not None else -1
            assert view.parent[node.order] == expected
            assert view.special[node.order] == (1 if node.is_special_child else 0)
        assert list(view.regular) == index.regular_orders
        assert list(view.subtree_end) == index.subtree_end

    def test_view_is_memoised(self):
        index = api.parse("<a><b/></a>").index
        assert index.arrays() is index.arrays()

    def test_string_match_scan_is_cached(self):
        view = api.parse("<a><b>x</b><b>y</b></a>").index.arrays()
        first = view.string_match("x", False)
        assert view.string_match("x", False) is first
        assert first != view.string_match("x", True)


# ----------------------------------------------------------------------
# Engine behaviour: stats, fallback, limits
# ----------------------------------------------------------------------
class TestCompiledEngine:
    def test_registered_in_api(self):
        assert "compiled" in api.engine_names()
        assert isinstance(api.get_engine("compiled"), CompiledEngine)

    def test_stats_count_instructions_and_cells(self):
        session = XPathSession(engine="compiled")
        result = session.run("//b", DOC)
        counters = result.stats.as_dict()
        assert counters["compiled_instructions"] == 3
        assert counters["array_cells"] >= 3
        assert "compiled_fallbacks" not in counters

    def test_fallback_outside_the_fragment(self):
        session = XPathSession(engine="compiled")
        result = session.run("//b[position() = 2]", DOC)
        assert result.stats.as_dict()["compiled_fallbacks"] == 1
        assert [node.order for node in result.nodes] == _reference_orders(
            "//b[position() = 2]"
        )

    def test_fallback_engines_are_pooled(self):
        engine = CompiledEngine()
        plan = plan_for("//b[position() = 1]", engine="compiled", cache=None)
        engine.evaluate(plan, DOC)
        fallback = engine._fallbacks[plan.classification.recommended_engine]
        engine.evaluate(plan, DOC)
        assert engine._fallbacks[plan.classification.recommended_engine] is fallback

    def test_fallback_handles_id_queries(self):
        got = [n.order for n in api.select("id('r')/b", DOC, engine="compiled")]
        assert got == _reference_orders("id('r')/b")

    def test_result_node_cap_applies(self):
        size = len(api.select("//b", DOC))
        with pytest.raises(ResourceLimitExceeded):
            api.select(
                "//b", DOC, engine="compiled", limits=EvalLimits(max_result_nodes=size - 1)
            )

    def test_operation_budget_aborts_mid_program(self):
        with pytest.raises(ResourceLimitExceeded):
            api.select(
                "//b", DOC, engine="compiled", limits=EvalLimits(max_operations=1)
            )

    def test_empty_program_guard(self):
        # register_count 0 / empty instructions never comes out of lowering;
        # the dataclass still behaves.
        assert len(ArrayProgram()) == 0


# ----------------------------------------------------------------------
# explain() wiring
# ----------------------------------------------------------------------
class TestExplain:
    def test_compilable_line_without_program_dump(self):
        explanation = XPathSession(engine="topdown").explain("//b")
        assert "compiled:   yes (3-instruction array program)" in explanation
        assert "axis-test" not in explanation

    def test_compiled_engine_dumps_the_program(self):
        explanation = XPathSession(engine="compiled").explain("//b")
        assert "compiled:   yes (3-instruction array program)" in explanation
        assert "axis-test[descendant-or-self]" in explanation
        assert "result: r2" in explanation

    def test_non_compilable_reports_the_reason(self):
        explanation = XPathSession().explain("id('r')")
        assert "compiled:   no (id() needs the identifier relation" in explanation
