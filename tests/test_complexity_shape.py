"""Shape tests for the paper's headline claims, using operation counters.

Wall-clock timings are noisy; the engines' deterministic operation counters
(:class:`~repro.engines.base.EvaluationStats`) let us assert the *shape* of
the paper's results in a unit test:

* the naive engine's work grows exponentially with query size on the
  Experiment-1/2/3/5 workloads while the CVT engines grow (at most)
  polynomially (Theorems 6.6, 7.5, 8.6 versus Section 2);
* the data-pool patch removes the exponential growth (Theorem 9.2, Table V);
* the Core XPath algebra performs O(|Q|) set operations, each O(|D|)
  (Theorem 10.5);
* MinContext's table rows stay within O(|D|·|Q|) on Extended-Wadler-style
  queries (Theorem 8.6 / 11.3 flavour).
"""

from __future__ import annotations

import pytest

from repro.engines import (
    DataPoolEngine,
    MinContextEngine,
    NaiveEngine,
    OptMinContextEngine,
    TopDownEngine,
)
from repro.fragments import CoreXPathEngine
from repro.workloads.documents import doc_deep, doc_flat, doc_flat_text
from repro.workloads.queries import (
    core_xpath_chain_query,
    experiment1_query,
    experiment2_query,
    experiment3_query,
    experiment5_descendant_query,
    experiment5_following_query,
)
from repro.xpath.ast import query_size
from repro.xpath.normalize import compile_query


def work_of(engine, query, document) -> int:
    engine.evaluate(query, document)
    return engine.last_stats.total_work()


def growth_ratio(values: list[int]) -> float:
    """Average tail ratio of consecutive values."""
    ratios = [b / a for a, b in zip(values, values[1:]) if a]
    return sum(ratios[-2:]) / len(ratios[-2:])


class TestExperiment1Shape:
    SIZES = [2, 4, 6, 8]

    def test_naive_is_exponential(self, doc2):
        work = [work_of(NaiveEngine(), experiment1_query(size), doc2) for size in self.SIZES]
        # Each appended parent::a/b pair doubles the work on DOC(2): the tail
        # ratio over two size steps is ≈ 4.
        assert growth_ratio(work) > 2.5
        assert work[-1] > 50 * work[0]

    @pytest.mark.parametrize("engine_cls", [TopDownEngine, MinContextEngine, OptMinContextEngine])
    def test_cvt_engines_are_linear_in_query_size(self, doc2, engine_cls):
        work = [work_of(engine_cls(), experiment1_query(size), doc2) for size in self.SIZES]
        # Work grows by a constant additive amount per extra step.
        increments = [b - a for a, b in zip(work, work[1:])]
        assert max(increments) <= 3 * max(1, min(increments))
        assert growth_ratio(work) < 1.8


class TestExperiment2Shape:
    SIZES = [1, 2, 3, 4]

    def test_naive_is_exponential(self):
        document = doc_flat_text(3)
        work = [work_of(NaiveEngine(), experiment2_query(size), document) for size in self.SIZES]
        assert growth_ratio(work) > 2.0

    def test_topdown_is_polynomial(self):
        document = doc_flat_text(3)
        work = [work_of(TopDownEngine(), experiment2_query(size), document) for size in self.SIZES]
        assert growth_ratio(work) < 1.7


class TestExperiment3AndDataPoolShape:
    SIZES = [1, 2, 3, 4]

    def test_naive_is_exponential(self):
        document = doc_flat(3)
        work = [work_of(NaiveEngine(), experiment3_query(size), document) for size in self.SIZES]
        assert growth_ratio(work) > 2.0

    def test_data_pool_removes_the_exponential_growth(self):
        """Table V: Xalan classic explodes, Xalan + data pool grows ~linearly."""
        document = doc_flat(10)
        naive_work = [
            work_of(NaiveEngine(), experiment3_query(size), document) for size in self.SIZES
        ]
        pooled_work = [
            work_of(DataPoolEngine(), experiment3_query(size), document) for size in self.SIZES
        ]
        assert growth_ratio(naive_work) > 3.0
        assert growth_ratio(pooled_work) < 1.5
        assert pooled_work[-1] < naive_work[-1] / 10

    def test_data_pool_hits_grow_with_nesting(self):
        document = doc_flat(10)
        engine = DataPoolEngine()
        engine.evaluate(experiment3_query(2), document)
        shallow_hits = engine.last_stats.memo_hits
        engine.evaluate(experiment3_query(4), document)
        deep_hits = engine.last_stats.memo_hits
        assert deep_hits > shallow_hits > 0


class TestExperiment5Shape:
    def test_following_chains(self):
        document = doc_flat(15)
        sizes = [1, 2, 3, 4]
        naive_work = [
            work_of(NaiveEngine(), experiment5_following_query(size), document) for size in sizes
        ]
        topdown_work = [
            work_of(TopDownEngine(), experiment5_following_query(size), document) for size in sizes
        ]
        assert growth_ratio(naive_work) > 2.0
        assert growth_ratio(topdown_work) < 1.6

    def test_descendant_chains_on_deep_document(self):
        document = doc_deep(10)
        sizes = [1, 2, 3, 4]
        naive_work = [
            work_of(NaiveEngine(), experiment5_descendant_query(size), document) for size in sizes
        ]
        topdown_work = [
            work_of(TopDownEngine(), experiment5_descendant_query(size), document) for size in sizes
        ]
        assert growth_ratio(naive_work) > 1.9
        assert growth_ratio(topdown_work) < 1.6


class TestDataComplexityShape:
    def test_topdown_data_complexity_is_polynomial_not_exponential(self):
        """Doubling |D| must not square the work more than quadratically
        (Experiment 4 / Table VII flavour: quadratic in |D| is expected)."""
        query = experiment2_query(3)
        small = work_of(TopDownEngine(), query, doc_flat_text(20))
        large = work_of(TopDownEngine(), query, doc_flat_text(40))
        assert large <= 5 * small  # ≤ quadratic growth (4×) with slack

    def test_core_xpath_is_linear_in_document_size(self):
        query = core_xpath_chain_query(3)
        small = work_of(CoreXPathEngine(), query, doc_flat_text(50))
        large = work_of(CoreXPathEngine(), query, doc_flat_text(200))
        # Counters count set operations, which are independent of |D|;
        # the real cost per operation is O(|D|).  The plan size must not grow.
        assert large == small


class TestCoreXPathAlgebraSize:
    def test_plan_size_linear_in_query_size(self):
        sizes = [1, 2, 4, 8]
        plans = []
        for size in sizes:
            expression = compile_query(core_xpath_chain_query(size))
            engine = CoreXPathEngine()
            from repro.fragments.algebra import algebra_size

            plans.append(algebra_size(engine.compile(expression)) / query_size(expression))
        # Operations per AST node stay bounded by a small constant.
        assert max(plans) < 4


class TestMinContextSpaceShape:
    def test_table_rows_bounded_by_dom_times_query(self):
        document = doc_flat_text(30)
        query = experiment2_query(3)
        engine = MinContextEngine()
        engine.evaluate(query, document)
        bound = len(document) * query_size(compile_query(query))
        assert engine.last_stats.table_rows <= bound

    def test_optmincontext_no_worse_than_mincontext_on_wadler_queries(self):
        document = doc_flat_text(30)
        query = "//*[boolean(following-sibling::b)]"
        mincontext = MinContextEngine()
        optmincontext = OptMinContextEngine()
        mincontext.evaluate(query, document)
        optmincontext.evaluate(query, document)
        assert (
            optmincontext.last_stats.table_rows
            <= mincontext.last_stats.table_rows + len(document)
        )
