"""Differential testing: every engine must agree on every query/document pair.

The engines implement very different algorithms (recursive, memoised,
bottom-up tables, vectorised top-down, MinContext, OptMinContext, and — where
applicable — the linear-time fragment algebras), so agreement across a broad
query corpus is strong evidence of correctness for all of them.
"""

from __future__ import annotations

import pytest

from repro.engines import (
    BottomUpEngine,
    DataPoolEngine,
    MinContextEngine,
    NaiveEngine,
    OptMinContextEngine,
    TopDownEngine,
)
from repro.fragments import CoreXPathEngine, XPatternsEngine, is_core_xpath, is_xpatterns
from repro.workloads.documents import doc_figure8, doc_flat, doc_flat_text, doc_library, random_document
from repro.xpath.normalize import compile_query
from repro.xpath.values import NodeSet

GENERAL_ENGINES = [
    NaiveEngine(),
    DataPoolEngine(),
    BottomUpEngine(),
    TopDownEngine(),
    MinContextEngine(),
    OptMinContextEngine(),
]

REFERENCE = NaiveEngine()

#: Query corpus: a mix of paper queries, axis coverage and value-level XPath.
QUERIES = [
    "/a/b",
    "//b",
    "//*",
    "//b[1]",
    "//b[last()]",
    "//b[position() != last()]",
    "//*[parent::a]",
    "//*[ancestor::b]",
    "//*[following-sibling::*[2]]",
    "//*[preceding-sibling::*]",
    "//*[following::d]",
    "//*[preceding::c]",
    "//*[child::*[child::*]]",
    "//*[descendant::*[. = '100']]",
    "//b/parent::a/b",
    "//a/b/parent::a/b/parent::a/b",
    "//*[parent::a/child::* = 'c']",
    "//a/b[count(parent::a/b) > 1]",
    "count(//b/following::b)",
    "count(//*)",
    "sum(//d)",
    "//c | //d",
    "//b/@id",
    "//*[@id = '21']",
    "//*[@id]",
    "string(//c)",
    "boolean(//q)",
    "//*[string-length(.) > 3]",
    "//*[contains(., '2')]",
    "//*[starts-with(., '1')]",
    "//*[not(child::*)]",
    "//*[count(child::*) = 2]",
    "//*[position() mod 2 = 1]",
    "(//c)[2]",
    "id('13')",
    "id('13 24')/parent::*",
    "//*[self::c or self::d]",
    "//*[name() = 'd']",
    "normalize-space(' x  y ')",
    "concat(name(/*), '-', count(//*))",
    "//d[. > 50]",
    "//*[. = 100]",
    "//*[child::text()]",
    "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]",
    "descendant::b/following-sibling::*[position() != last()]",
    "/descendant::a/child::b[child::c/child::d or not(following::*)]",
]

DOCUMENTS = {
    "figure8": doc_figure8(),
    "doc4": doc_flat(4),
    "doc_prime5": doc_flat_text(5),
    "library": doc_library(books=8, seed=11),
    "random17": random_document(17),
    "random42": random_document(42, max_depth=3, max_children=3),
}


def canonical(value):
    """Make engine results comparable (node sets → frozenset of node ids)."""
    if isinstance(value, NodeSet):
        return ("nset", frozenset(node.order for node in value))
    if isinstance(value, float) and value != value:  # NaN
        return ("nan",)
    return (type(value).__name__, value)


@pytest.mark.parametrize("doc_name", sorted(DOCUMENTS))
@pytest.mark.parametrize("query", QUERIES)
def test_all_general_engines_agree(query, doc_name):
    document = DOCUMENTS[doc_name]
    expected = canonical(REFERENCE.evaluate(query, document))
    for engine in GENERAL_ENGINES[1:]:
        actual = canonical(engine.evaluate(query, document))
        assert actual == expected, f"{engine.name} disagrees on {query!r} over {doc_name}"


@pytest.mark.parametrize("doc_name", sorted(DOCUMENTS))
@pytest.mark.parametrize("query", QUERIES)
def test_fragment_engines_agree_where_applicable(query, doc_name):
    document = DOCUMENTS[doc_name]
    expression = compile_query(query)
    expected = None
    if is_core_xpath(expression):
        expected = canonical(REFERENCE.evaluate(query, document))
        actual = canonical(CoreXPathEngine().evaluate(query, document))
        assert actual == expected, f"corexpath disagrees on {query!r} over {doc_name}"
    if is_xpatterns(expression):
        if expected is None:
            expected = canonical(REFERENCE.evaluate(query, document))
        actual = canonical(XPatternsEngine().evaluate(query, document))
        assert actual == expected, f"xpatterns disagrees on {query!r} over {doc_name}"


def test_corpus_exercises_the_fragments():
    """Sanity check on the corpus itself: it hits every fragment."""
    core = sum(1 for q in QUERIES if is_core_xpath(compile_query(q)))
    xpat = sum(1 for q in QUERIES if is_xpatterns(compile_query(q)))
    assert core >= 5
    assert xpat > core
