"""Behavioural tests that every full-XPath engine must satisfy.

These are parametrised over the six general-purpose engines so that each
query/result pair below is checked six times — the naive baseline, the
data-pool patch, and the four polynomial algorithms must all implement the
same language.
"""

from __future__ import annotations

import math

import pytest

from repro.engines import (
    BottomUpEngine,
    DataPoolEngine,
    MinContextEngine,
    NaiveEngine,
    OptMinContextEngine,
    TopDownEngine,
)
from repro.errors import VariableBindingError, XPathEvaluationError
from repro.xpath.context import Context
from repro.xpath.values import NodeSet

ENGINES = [
    NaiveEngine,
    DataPoolEngine,
    BottomUpEngine,
    TopDownEngine,
    MinContextEngine,
    OptMinContextEngine,
]


@pytest.fixture(params=ENGINES, ids=lambda cls: cls.name)
def engine(request):
    return request.param()


def ids_of(nodes):
    return [node.attribute_value("id") for node in nodes]


class TestNodeSetQueries:
    def test_absolute_child_path(self, engine, figure8):
        assert ids_of(engine.select("/a/b", figure8)) == ["11", "21"]

    def test_descendant_axis(self, engine, figure8):
        assert ids_of(engine.select("//c", figure8)) == ["12", "13", "22"]

    def test_parent_axis(self, engine, figure8):
        result = engine.select("//c/parent::b", figure8)
        assert ids_of(result) == ["11", "21"]

    def test_ancestor_axis(self, engine, figure8):
        result = engine.select("//d[@id='23']/ancestor::*", figure8)
        assert ids_of(result) == ["10", "21"]

    def test_following_sibling(self, engine, figure8):
        result = engine.select("//c[@id='12']/following-sibling::*", figure8)
        assert ids_of(result) == ["13", "14"]

    def test_preceding_sibling(self, engine, figure8):
        result = engine.select("//d[@id='24']/preceding-sibling::*", figure8)
        assert ids_of(result) == ["22", "23"]

    def test_following_axis(self, engine, figure8):
        result = engine.select("//b[@id='11']/following::d", figure8)
        assert ids_of(result) == ["23", "24"]

    def test_preceding_axis(self, engine, figure8):
        result = engine.select("//b[@id='21']/preceding::c", figure8)
        assert ids_of(result) == ["12", "13"]

    def test_attribute_axis(self, engine, figure8):
        result = engine.select("//b/@id", figure8)
        assert [node.value for node in result] == ["11", "21"]

    def test_positional_predicate(self, engine, figure8):
        assert ids_of(engine.select("/a/b[2]", figure8)) == ["21"]
        assert ids_of(engine.select("/a/b[1]/c[last()]", figure8)) == ["13"]

    def test_predicate_with_path(self, engine, figure8):
        result = engine.select("//b[child::d]", figure8)
        assert ids_of(result) == ["11", "21"]
        result = engine.select("//b[child::c[2]]", figure8)
        assert ids_of(result) == ["11"]

    def test_string_comparison_predicate(self, engine, figure8):
        result = engine.select("//*[child::text() = '100']", figure8)
        assert ids_of(result) == ["14", "24"]

    def test_union(self, engine, figure8):
        result = engine.select("//c | //d", figure8)
        assert ids_of(result) == ["12", "13", "14", "22", "23", "24"]

    def test_relative_query_from_context_node(self, engine, figure8):
        b21 = figure8.element_by_id("21")
        result = engine.select("child::d", figure8, Context(b21, 1, 1))
        assert ids_of(result) == ["23", "24"]

    def test_dot_and_dotdot(self, engine, figure8):
        c12 = figure8.element_by_id("12")
        assert ids_of(engine.select(".", figure8, c12)) == ["12"]
        assert ids_of(engine.select("..", figure8, c12)) == ["11"]

    def test_id_function(self, engine, figure8):
        assert ids_of(engine.select("id('13 24')", figure8)) == ["13", "24"]
        assert ids_of(engine.select("id('13')/parent::*", figure8)) == ["11"]

    def test_filter_expression(self, engine, figure8):
        assert ids_of(engine.select("(//c)[2]", figure8)) == ["13"]

    def test_empty_result(self, engine, figure8):
        assert engine.select("//nonexistent", figure8) == []

    def test_root_query(self, engine, figure8):
        assert engine.select("/", figure8) == [figure8.root]


class TestScalarQueries:
    def test_count(self, engine, figure8):
        assert engine.evaluate("count(//c)", figure8) == 3.0
        assert engine.evaluate("count(//b/*)", figure8) == 6.0

    def test_sum(self, engine, figure8):
        assert engine.evaluate("sum(//d[. = '100'])", figure8) == 200.0

    def test_arithmetic_with_paths(self, engine, figure8):
        assert engine.evaluate("count(//c) * 2 + 1", figure8) == 7.0

    def test_string_value_of_path(self, engine, figure8):
        assert engine.evaluate("string(//d)", figure8) == "100"

    def test_boolean_of_path(self, engine, figure8):
        assert engine.evaluate("boolean(//c)", figure8) is True
        assert engine.evaluate("boolean(//zz)", figure8) is False

    def test_existential_comparison(self, engine, figure8):
        assert engine.evaluate("//d = 100", figure8) is True
        assert engine.evaluate("//d = 99", figure8) is False
        assert engine.evaluate("//c != //d", figure8) is True

    def test_position_and_last_at_top_level(self, engine, figure8):
        context = Context(figure8.element_by_id("13"), 2, 3)
        assert engine.evaluate("position()", figure8, context) == 2.0
        assert engine.evaluate("last()", figure8, context) == 3.0
        assert engine.evaluate("position() = last()", figure8, context) is False

    def test_string_functions_on_context(self, engine, figure8):
        context = Context(figure8.element_by_id("14"), 1, 1)
        assert engine.evaluate("string()", figure8, context) == "100"
        assert engine.evaluate("number()", figure8, context) == 100.0
        assert engine.evaluate("name()", figure8, context) == "d"

    def test_nan_propagation(self, engine, figure8):
        assert math.isnan(engine.evaluate("number('abc')", figure8))

    def test_literals(self, engine, figure8):
        assert engine.evaluate("3 div 4", figure8) == 0.75
        assert engine.evaluate("concat('x', 'y')", figure8) == "xy"
        assert engine.evaluate("true() and not(false())", figure8) is True


class TestVariables:
    def test_variable_binding(self, engine, figure8):
        assert engine.evaluate("$x + 1", figure8, variables={"x": 2.0}) == 3.0

    def test_node_set_variable(self, engine, figure8):
        nodes = NodeSet([figure8.element_by_id("14")])
        assert engine.evaluate("count($n)", figure8, variables={"n": nodes}) == 1.0

    def test_missing_variable(self, engine, figure8):
        with pytest.raises(VariableBindingError):
            engine.evaluate("$missing", figure8)


class TestErrors:
    def test_select_requires_node_set(self, engine, figure8):
        with pytest.raises(XPathEvaluationError):
            engine.select("count(//c)", figure8)

    def test_stats_populated(self, engine, figure8):
        engine.evaluate("//c", figure8)
        assert engine.last_stats is not None
        assert engine.last_stats.total_work() > 0
