"""Unit tests for the CVT machinery internals.

`engines/cvt.py` (ContextValueTable, TableStore) and `engines/relevance.py`
(Relev(N) analysis, key projection, domain enumeration) previously had no
dedicated test file — they were exercised only through the engines.  These
tests pin down the paper-facing invariants directly: table population and
lookup under relevance projection, recovery of the full context-value
relation from the projected rows (Section 8 / footnote 8), and the Relev(N)
base and compound cases of Section 8.2.
"""

import pytest

from repro import api
from repro.engines.bottomup import BottomUpEngine
from repro.engines.cvt import ContextValueTable, TableStore
from repro.engines.relevance import (
    CN,
    CP,
    CS,
    EMPTY,
    ONLY_CN,
    ONLY_CP,
    ONLY_CS,
    compute_relevance,
    depends_on_position_or_size,
    enumerate_keys,
    key_to_context,
    project_context,
    project_triple,
)
from repro.xpath.ast import (
    BinaryOp,
    ContextFunction,
    FilterExpr,
    LocationPath,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
    VariableReference,
)
from repro.xpath.context import Context, context_domain
from repro.xpath.normalize import compile_query
from repro.xpath.values import NodeSet


@pytest.fixture(scope="module")
def doc():
    return api.parse("<a><b>1</b><b>2</b><c/></a>")


def _first(document, query):
    return api.select(query, document)[0]


class TestContextValueTablePopulation:
    def test_set_and_get_by_context(self, doc):
        expression = compile_query("string(self::node())")
        table = ContextValueTable(expression, ONLY_CN)
        node = _first(doc, "//b")
        table.set_context(Context(node, 1, 1), "1")
        assert table.get_context(Context(node, 1, 1)) == "1"
        assert len(table) == 1

    def test_projection_collapses_irrelevant_components(self, doc):
        # With Relev = {cn}, contexts differing only in (k, n) share one row.
        table = ContextValueTable(compile_query("self::b"), ONLY_CN)
        node = _first(doc, "//b")
        table.set_context(Context(node, 1, 1), "row")
        table.set_context(Context(node, 2, 5), "row'")
        assert len(table) == 1  # the second write overwrote the same key
        assert table.get_triple(node, 4, 9) == "row'"

    def test_position_relevant_rows_are_kept_apart(self, doc):
        table = ContextValueTable(compile_query("position()"), ONLY_CP)
        node = _first(doc, "//b")
        table.set_context(Context(node, 1, 3), 1.0)
        table.set_context(Context(node, 2, 3), 2.0)
        assert len(table) == 2
        # The context-node column is projected away entirely.
        other = _first(doc, "//c")
        assert table.get_triple(other, 2, 7) == 2.0

    def test_maybe_get_and_contains(self, doc):
        expression = compile_query("child::b")
        table = ContextValueTable(expression, ONLY_CN)
        node = _first(doc, "//c")
        assert table.maybe_get_context(Context(node, 1, 1)) is None
        table.set_key(project_context(Context(node, 1, 1), ONLY_CN), "x")
        assert table.maybe_get_context(Context(node, 1, 1)) == "x"
        assert project_context(Context(node, 1, 1), ONLY_CN) in table
        assert table.get_key((node, None, None)) == "x"

    def test_rows_iterates_all_entries(self, doc):
        table = ContextValueTable(compile_query("position()"), ONLY_CP)
        node = doc.root
        for position in range(1, 4):
            table.set_context(Context(node, position, 3), float(position))
        assert sorted(value for _, value in table.rows()) == [1.0, 2.0, 3.0]


class TestFullRelationRecovery:
    """⟨c, v⟩ ∈ full relation iff its projection is a row (Section 8)."""

    def test_projected_table_determines_every_full_context(self, doc):
        # count(child::b) ignores position and size: one row per node must
        # answer for the whole dom × {⟨k, n⟩} context domain.
        engine = BottomUpEngine()
        engine.evaluate("count(child::b)", doc)
        expression = next(iter(engine.last_tables.tables())).expression
        # find the root table (the whole query)
        table = engine.last_tables.get(
            next(
                t.expression
                for t in engine.last_tables.tables()
                if t.expression.to_xpath() == "count(child::b)"
            )
        )
        assert table.relevance == ONLY_CN
        for context in context_domain(doc, max_size=3):
            recovered = table.get_triple(context.node, context.position, context.size)
            direct = api.evaluate("count(child::b)", doc, context)
            assert recovered == direct

    def test_relevant_projection_matches_manual_projection(self, doc):
        node = _first(doc, "//b")
        for relevance in (EMPTY, ONLY_CN, ONLY_CP, ONLY_CS, frozenset({CP, CS})):
            key = project_triple(node, 2, 5, relevance)
            assert key == (
                node if CN in relevance else None,
                2 if CP in relevance else None,
                5 if CS in relevance else None,
            )
            assert project_context(Context(node, 2, 5), relevance) == key

    def test_key_to_context_reconstructs_representative(self, doc):
        node = _first(doc, "//b")
        context = key_to_context((node, 3, 4), default_node=doc.root)
        assert context == Context(node, 3, 4)
        defaulted = key_to_context((None, None, None), default_node=doc.root)
        assert defaulted.node is doc.root
        assert defaulted.position == 1 and defaulted.size >= 1


class TestEnumerateKeys:
    def test_node_only_relevance_enumerates_dom(self, doc):
        keys = list(enumerate_keys(doc, ONLY_CN))
        assert len(keys) == len(doc)
        assert all(position is None and size is None for _, position, size in keys)

    def test_position_and_size_respect_triangle(self, doc):
        keys = list(enumerate_keys(doc, frozenset({CP, CS})))
        assert all(node is None for node, _, _ in keys)
        assert all(1 <= position <= size for _, position, size in keys)
        dom = len(doc)
        assert len(keys) == dom * (dom + 1) // 2

    def test_empty_relevance_is_single_key(self, doc):
        assert list(enumerate_keys(doc, EMPTY)) == [(None, None, None)]

    def test_nodes_argument_restricts_column(self, doc):
        restricted = [_first(doc, "//c")]
        keys = list(enumerate_keys(doc, ONLY_CN, nodes=restricted))
        assert keys == [(restricted[0], None, None)]


class TestRelevanceAnalysis:
    def _relev(self, query):
        expression = compile_query(query)
        return compute_relevance(expression)[expression], expression

    def test_base_cases(self):
        assert self._relev("3")[0] == EMPTY
        assert self._relev("'s'")[0] == EMPTY
        assert self._relev("$v")[0] == EMPTY
        assert self._relev("true()")[0] == EMPTY
        assert self._relev("position()")[0] == ONLY_CP
        assert self._relev("last()")[0] == ONLY_CS
        assert self._relev("string()")[0] == ONLY_CN
        assert self._relev("name()")[0] == ONLY_CN

    def test_paths_and_steps(self):
        assert self._relev("child::a")[0] == ONLY_CN
        assert self._relev("/descendant::a")[0] == EMPTY  # absolute path
        relevance, expression = self._relev("child::a[position() = last()]")
        # The path node itself depends only on the context node …
        assert relevance == ONLY_CN
        # … while the predicate's subexpressions record their own needs.
        table = compute_relevance(expression)
        step = expression.steps[0]
        predicate = step.predicates[0]
        assert table[predicate] == frozenset({CP, CS})

    def test_compound_expressions_take_unions(self):
        assert self._relev("position() + last()")[0] == frozenset({CP, CS})
        assert self._relev("count(child::a) + position()")[0] == frozenset({CN, CP})
        assert self._relev("-position()")[0] == ONLY_CP
        assert self._relev("string-length(string())")[0] == ONLY_CN

    def test_union_filter_path_expressions(self):
        relevance, _ = self._relev("child::a | /descendant::b")
        assert relevance == ONLY_CN  # union of {cn} and ∅
        # id('k')/child::a — a PathExpr takes its start's relevance (∅: the
        # id argument is a constant).
        relevance, expression = self._relev("id('k')/child::a")
        assert isinstance(expression, PathExpr)
        assert relevance == EMPTY

    def test_every_parse_tree_node_is_analysed(self):
        expression = compile_query("//a[position() = 2]/child::b[last() > 1]")
        table = compute_relevance(expression)
        from repro.xpath.ast import walk

        for node in walk(expression):
            assert node in table

    def test_depends_on_position_or_size(self):
        assert depends_on_position_or_size(frozenset({CP}))
        assert depends_on_position_or_size(frozenset({CS, CN}))
        assert not depends_on_position_or_size(ONLY_CN)
        assert not depends_on_position_or_size(EMPTY)


class TestTableStore:
    def test_add_get_and_total_rows(self, doc):
        store = TableStore()
        first = ContextValueTable(compile_query("position()"), ONLY_CP)
        first.set_context(Context(doc.root, 1, 2), 1.0)
        first.set_context(Context(doc.root, 2, 2), 2.0)
        second = ContextValueTable(compile_query("'x'"), EMPTY)
        second.set_context(Context(doc.root, 1, 1), "x")
        store.add(first)
        store.add(second)
        assert len(store) == 2
        assert store.get(first.expression) is first
        assert store.maybe_get(second.expression) is second
        assert store.maybe_get(compile_query("position()")) is None  # new AST
        assert first.expression in store
        assert store.total_rows() == 3
        assert set(store.tables()) == {first, second}

    def test_population_by_bottomup_engine(self, doc):
        engine = BottomUpEngine()
        value = engine.evaluate("child::b[position() = 2]", doc)
        assert isinstance(value, NodeSet)
        store = engine.last_tables
        assert len(store) > 0
        assert store.total_rows() == sum(len(t) for t in store.tables())
        assert engine.last_stats.table_rows == store.total_rows()
