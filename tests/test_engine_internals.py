"""White-box tests of the individual engines' internal machinery.

The black-box behaviour is covered by test_engine_basics / test_differential;
these tests pin the *mechanisms* the paper describes: context-value tables,
the data pool, vectorised evaluation, the relevant-context analysis, the
MinContext procedures and the backward propagation of OptMinContext.
"""

from __future__ import annotations

import pytest

from repro.engines import (
    BottomUpEngine,
    DataPoolEngine,
    MinContextEngine,
    NaiveEngine,
    OptMinContextEngine,
    TopDownEngine,
)
from repro.engines.base import EvaluationStats
from repro.engines.common import evaluate_context_function, filter_by_predicates
from repro.engines.cvt import ContextValueTable, TableStore
from repro.engines.mincontext import MinContextEvaluator
from repro.engines.optmincontext import OptMinContextEvaluator
from repro.engines.relevance import (
    CN,
    CP,
    CS,
    compute_relevance,
    depends_on_position_or_size,
    enumerate_keys,
    project_context,
)
from repro.axes.regex import Axis
from repro.workloads.documents import doc_flat, doc_flat_text
from repro.xpath.ast import BinaryOp, ContextFunction, LocationPath, NumberLiteral, walk
from repro.xpath.context import Context, StaticContext
from repro.xpath.normalize import compile_query
from repro.xpath.values import NodeSet


class TestRelevance:
    def test_constants_and_primitives(self):
        relevance = compute_relevance(compile_query("position() + 1"))
        by_type = {type(node).__name__: rel for node, rel in relevance.items()}
        assert by_type["ContextFunction"] == frozenset({CP})
        assert by_type["NumberLiteral"] == frozenset()
        assert by_type["BinaryOp"] == frozenset({CP})

    def test_location_paths_depend_on_cn_only(self):
        query = compile_query("child::a[position() = last()]")
        relevance = compute_relevance(query)
        assert relevance[query] == frozenset({CN})
        step = query.steps[0]
        assert relevance[step] == frozenset({CN})
        predicate = step.predicates[0]
        assert relevance[predicate] == frozenset({CP, CS})

    def test_absolute_paths_are_context_independent(self):
        query = compile_query("/descendant::a")
        assert compute_relevance(query)[query] == frozenset()

    def test_variables_and_literals_are_irrelevant(self):
        query = compile_query("$x + 3")
        relevance = compute_relevance(query)
        assert relevance[query] == frozenset()

    def test_string_function_depends_on_context_node(self):
        query = compile_query("string()")
        assert compute_relevance(query)[query] == frozenset({CN})

    def test_union_combines_children(self):
        query = compile_query("//a | child::b")
        relevance = compute_relevance(query)
        assert relevance[query] == frozenset({CN})

    def test_depends_on_position_or_size(self):
        assert depends_on_position_or_size(frozenset({CP}))
        assert depends_on_position_or_size(frozenset({CS, CN}))
        assert not depends_on_position_or_size(frozenset({CN}))

    def test_projection(self, figure8):
        context = Context(figure8.document_element, 2, 5)
        assert project_context(context, frozenset({CN})) == (figure8.document_element, None, None)
        assert project_context(context, frozenset({CP, CS})) == (None, 2, 5)
        assert project_context(context, frozenset()) == (None, None, None)

    def test_enumerate_keys_respects_relevance(self, doc2):
        keys = list(enumerate_keys(doc2, frozenset({CP, CS})))
        n = len(doc2)
        assert len(keys) == n * (n + 1) / 2
        assert all(node is None for node, _p, _s in keys)
        single = list(enumerate_keys(doc2, frozenset()))
        assert single == [(None, None, None)]


class TestContextValueTables:
    def test_set_and_get_by_context(self, figure8):
        expr = compile_query("string()")
        table = ContextValueTable(expr, frozenset({CN}))
        context = Context(figure8.document_element, 1, 1)
        table.set_context(context, "value")
        assert table.get_context(context) == "value"
        assert table.get_triple(figure8.document_element, 3, 7) == "value"
        assert len(table) == 1

    def test_maybe_get(self, figure8):
        expr = compile_query("string()")
        table = ContextValueTable(expr, frozenset({CN}))
        assert table.maybe_get_context(Context(figure8.root, 1, 1)) is None

    def test_table_store(self, figure8):
        expr = compile_query("1")
        store = TableStore()
        table = ContextValueTable(expr, frozenset())
        table.set_key((None, None, None), 1.0)
        store.add(table)
        assert expr in store
        assert store.get(expr) is table
        assert store.total_rows() == 1
        assert len(store) == 1


class TestBottomUpInternals:
    def test_tables_exist_for_every_subexpression(self, doc2):
        engine = BottomUpEngine()
        query = "//b[position() != last()]"
        engine.evaluate(query, doc2)
        compiled_size = len(list(walk(compile_query(query))))
        assert len(engine.last_tables) == compiled_size

    def test_absolute_path_table_has_single_row(self, doc2):
        engine = BottomUpEngine()
        engine.evaluate("/a/b", doc2)
        for table in engine.last_tables.tables():
            if isinstance(table.expression, LocationPath) and table.expression.absolute:
                assert len(table) == 1

    def test_relative_path_table_has_row_per_node(self, doc2):
        engine = BottomUpEngine()
        engine.evaluate("descendant::b", doc2)
        for table in engine.last_tables.tables():
            if isinstance(table.expression, LocationPath):
                assert len(table) == len(doc2)

    def test_position_table_rows(self, doc2):
        engine = BottomUpEngine()
        engine.evaluate("//b[position() = 2]", doc2)
        position_tables = [
            table
            for table in engine.last_tables.tables()
            if isinstance(table.expression, ContextFunction)
            and table.expression.name == "position"
        ]
        assert position_tables and len(position_tables[0]) == len(doc2)

    def test_stats_count_table_rows(self, doc2):
        engine = BottomUpEngine()
        engine.evaluate("//b", doc2)
        assert engine.last_stats.table_rows == engine.last_tables.total_rows()


class TestDataPoolInternals:
    def test_memoisation_hits_on_repeated_subexpressions(self, doc2):
        engine = DataPoolEngine()
        engine.evaluate("//b[count(parent::a/b) > 1][count(parent::a/b) > 1]", doc2)
        assert engine.last_stats.memo_hits > 0

    def test_no_hits_without_repetition(self, doc2):
        engine = DataPoolEngine()
        engine.evaluate("/a", doc2)
        assert engine.last_stats.memo_hits == 0

    def test_matches_naive_results_while_doing_less_work(self):
        document = doc_flat(8)
        query = "//a/b[count(parent::a/b[count(parent::a/b) > 1]) > 1]"
        naive = NaiveEngine()
        pooled = DataPoolEngine()
        naive_nodes = naive.select(query, document)
        pooled_nodes = pooled.select(query, document)
        assert naive_nodes == pooled_nodes
        assert pooled.last_stats.total_work() < naive.last_stats.total_work()


class TestTopDownInternals:
    def test_distinct_sources_expanded_once(self):
        """The sharing that breaks the exponential recursion: applying a step
        to the same context node twice must not double the step count."""
        document = doc_flat(6)
        engine = TopDownEngine()
        engine.evaluate("//b/parent::a/b/parent::a/b", document)
        # parent::a from 6 b's is a single node; each of the 5 steps is applied
        # to at most |dom| distinct sources.
        assert engine.last_stats.location_step_applications <= 5 * len(document)

    def test_vector_length_matches_contexts(self, figure8):
        from repro.engines.topdown import _VectorEvaluator

        evaluator = _VectorEvaluator(StaticContext(figure8), EvaluationStats())
        contexts = [Context(node, 1, 1) for node in figure8.dom[:5]]
        values = evaluator.eval_expression(compile_query("count(child::*)"), contexts)
        assert len(values) == 5

    def test_predicate_contexts_are_deduplicated(self, figure8):
        engine = TopDownEngine()
        engine.evaluate("//*[position() = 1]", figure8)
        first = engine.last_stats.expression_evaluations
        engine.evaluate("//*[position() = 1]", figure8)
        assert engine.last_stats.expression_evaluations == first  # deterministic


class TestMinContextInternals:
    def test_outermost_path_never_builds_inner_relations(self, doc2):
        engine = MinContextEngine()
        engine.evaluate("//b/parent::a/b", doc2)
        # Outermost propagation touches each step once per evaluation.
        assert engine.last_stats.location_step_applications <= 4

    def test_eval_by_cnode_only_is_idempotent(self, figure8):
        evaluator = MinContextEvaluator(StaticContext(figure8), EvaluationStats())
        query = compile_query("child::c = 'x'")
        sources = {figure8.element_by_id("11")}
        evaluator.eval_by_cnode_only(query, sources)
        rows_before = evaluator.stats.table_rows
        evaluator.eval_by_cnode_only(query, sources)
        assert evaluator.stats.table_rows == rows_before

    def test_eval_single_context_uses_tables_for_cn_only_expressions(self, figure8):
        evaluator = MinContextEvaluator(StaticContext(figure8), EvaluationStats())
        query = compile_query("count(child::*) > 1")
        node = figure8.element_by_id("11")
        evaluator.eval_by_cnode_only(query, {node})
        assert evaluator.eval_single_context(query, node, 1, 1) is True

    def test_position_dependent_predicates_evaluated_per_pair(self, doc2):
        engine = MinContextEngine()
        result = engine.select("//b[position() = last()]", doc2)
        assert len(result) == 1

    def test_scalar_query_path(self, figure8):
        engine = MinContextEngine()
        assert engine.evaluate("count(//c) + 1", figure8) == 4.0


class TestOptMinContextInternals:
    def test_backward_propagation_produces_boolean_tables(self, figure8):
        evaluator = OptMinContextEvaluator(StaticContext(figure8), EvaluationStats())
        query = compile_query("//*[boolean(following::d)]")
        evaluator.run(query, Context(figure8.root, 1, 1))
        assert evaluator.bottomup_evaluated
        table = evaluator.tables[next(iter(evaluator.bottomup_evaluated))]
        assert set(table.values()) <= {True, False}
        assert len(table) == len(figure8)

    def test_shape_detection_ignores_context_dependent_scalars(self, figure8):
        evaluator = OptMinContextEvaluator(StaticContext(figure8), EvaluationStats())
        evaluator.relevance = compute_relevance(compile_query("//*"))
        eligible = compile_query("child::c = 'x'")
        not_eligible = compile_query("child::c = string()")
        assert evaluator._bottomup_shape(_first_binary(eligible)) is not None
        assert evaluator._bottomup_shape(_first_binary(not_eligible)) is None

    def test_agrees_with_mincontext_on_non_fragment_queries(self, figure8):
        query = "//*[count(child::*) = 3]"
        assert OptMinContextEngine().select(query, figure8) == MinContextEngine().select(
            query, figure8
        )

    def test_propagate_through_absolute_inner_path(self, figure8):
        query = "//*[boolean(/a/b/c)]"
        expected = TopDownEngine().select(query, figure8)
        assert OptMinContextEngine().select(query, figure8) == expected


def _first_binary(expression):
    for node in walk(expression):
        if isinstance(node, BinaryOp):
            return node
    raise AssertionError("no binary operator found")


class TestCommonHelpers:
    def test_evaluate_context_function(self, figure8):
        context = Context(figure8.element_by_id("14"), 2, 9)
        assert evaluate_context_function("position", context) == 2.0
        assert evaluate_context_function("last", context) == 9.0
        assert evaluate_context_function("string", context) == "100"
        assert evaluate_context_function("number", context) == 100.0
        assert evaluate_context_function("name", context) == "d"
        assert evaluate_context_function("local-name", context) == "d"
        assert evaluate_context_function("namespace-uri", context) == ""

    def test_filter_by_predicates_positions(self, doc2):
        a = doc2.document_element
        candidates = list(a.children)
        predicate = compile_query("position() = 2")

        def evaluate(expr, context):
            return float(context.position) == 2.0

        result = filter_by_predicates(candidates, Axis.CHILD, [predicate], evaluate)
        assert result == [candidates[1]]

    def test_stats_bump_and_as_dict(self):
        stats = EvaluationStats()
        stats.bump("custom", 3)
        stats.bump("custom")
        assert stats.extras["custom"] == 4
        assert stats.as_dict()["custom"] == 4
        assert stats.total_work() >= 4
