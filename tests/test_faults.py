"""Fault-tolerance test offensive (ISSUE 6).

Five fronts, all driven by the deterministic fault-injection harness of
:mod:`repro.faultinject`:

* **the harness itself** — spec round-trips, seeded-plan determinism,
  environment activation (including ``random:`` seed specs, which are
  chaos input, not live plans);
* **unified isolation** — an unexpected non-``ReproError`` exception is
  wrapped into the *identical* ``UnexpectedEvaluationError`` by the
  serial, thread and process paths (the ISSUE-6 satellite fix);
* **worker recovery** — a killed process worker / corrupted result wire
  costs nothing but a retry: the batch completes node-for-node identical
  to serial, the :class:`~repro.parallel.FailureReport` records the
  recovery chain, and exhausted retries degrade to in-parent serial
  evaluation rather than failing documents;
* **deadlines** — an injected hang converts to a per-document
  ``batch_deadline`` :class:`ResourceLimitExceeded` well before the hang
  would have finished, on the serial, parallel and streaming paths alike;
* **chaos differential** — random seeded fault plans over a small corpus:
  every document that reports success must match the fault-free serial
  run exactly, and recoverable-only plans must heal to full equality.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time

import pytest

from repro import api
from repro.collection import BatchRun
from repro.engines.base import EvalLimits
from repro.errors import (
    BatchAborted,
    ResourceLimitExceeded,
    UnexpectedEvaluationError,
    WorkerLostError,
    XMLSyntaxError,
)
from repro.faultinject import (
    FAULT_PLAN_ENV,
    Fault,
    FaultPlan,
    InjectedFault,
    active_plan,
    inject,
    seeds_from_env,
)
from repro.parallel import (
    ChunkFate,
    FailureReport,
    ParallelExecutor,
    RetryPolicy,
)
from repro.session import XPathSession
from repro.xpath.values import NodeSet

SOURCES = [
    "<a><b/><b/></a>",
    "<a/>",
    "<a><b>c</b><c/><b>c</b><b/></a>",
    "<a x='1'><b y='2'>t</b><!--note--></a>",
    "<a><a><a><b/></a></a></a>",
    "<a><b/><b/><b/><b/></a>",
]

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.05)


def _shape(batch: BatchRun):
    """A comparable fingerprint: per-document orders / value / error type."""
    shape = []
    for result in batch:
        if not result.ok:
            shape.append(("error", type(result.error).__name__))
        elif result.nodes is not None:
            shape.append(("nodes", tuple(node.order for node in result.nodes)))
        elif result.matches is not None:
            shape.append(
                ("matches", tuple((m.order, m.label) for m in result.matches))
            )
        elif isinstance(result.value, NodeSet):
            shape.append(("nodeset", tuple(node.order for node in result.value)))
        else:
            shape.append(("value", result.value))
    return shape


# ----------------------------------------------------------------------
# The harness itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_round_trip(self):
        spec = (
            "kill@chunk:index=2,max_attempt=1;"
            "hang@document:index=0,seconds=0.5;"
            "delay@stream.token:index=100,seconds=0.2;"
            "fail@parse:index=3"
        )
        plan = FaultPlan.parse(spec)
        assert len(plan.faults) == 4
        assert plan.faults[0] == Fault("chunk", "kill", index=2, max_attempt=1)
        assert plan.faults[1].seconds == 0.5
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("kill-chunk")  # no ACTION@SITE separator
        with pytest.raises(ValueError):
            FaultPlan.parse("kill@nowhere")  # unknown site
        with pytest.raises(ValueError):
            FaultPlan.parse("hang@chunk")  # action invalid at site
        with pytest.raises(ValueError):
            FaultPlan.parse("kill@chunk:index")  # option without value

    def test_attempt_gating(self):
        fault = Fault("chunk", "kill", index=1, max_attempt=2)
        assert fault.matches("chunk", (0, 1), attempt=0)
        assert fault.matches("chunk", (0, 1), attempt=1)
        assert not fault.matches("chunk", (0, 1), attempt=2)
        assert not fault.matches("chunk", (2, 3), attempt=0)  # index miss
        assert not fault.matches("document", (1,), attempt=0)  # site miss

    def test_random_plans_are_deterministic(self):
        one = FaultPlan.random(42, documents=8)
        two = FaultPlan.random(42, documents=8)
        assert one == two
        assert one.seed == 42
        assert FaultPlan.random(43, documents=8) != one or True  # may collide
        recoverable = FaultPlan.random(7, documents=8, recoverable_only=True)
        assert all(f.site == "chunk" for f in recoverable.faults)
        assert all(f.max_attempt is not None for f in recoverable.faults)

    def test_env_activation_literal_spec(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "raise@document:index=1")
        plan = active_plan()
        assert plan is not None
        assert plan.faults == (Fault("document", "raise", index=1),)
        monkeypatch.setenv(FAULT_PLAN_ENV, "raise@document:index=2")
        assert active_plan().faults[0].index == 2  # cache keyed by spec
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert active_plan() is None

    def test_env_random_spec_feeds_seeds_not_plans(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "random:11,23,37")
        assert active_plan() is None
        assert seeds_from_env() == (11, 23, 37)
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert seeds_from_env(default=(5,)) == (5,)

    def test_inject_restores_previous_plan(self):
        outer = FaultPlan.parse("raise@document:index=0")
        inner = FaultPlan.parse("raise@document:index=1")
        with inject(outer):
            assert active_plan() is outer
            with inject(inner):
                assert active_plan() is inner
            with inject(None):  # no-op: outer still applies
                assert active_plan() is outer
        assert active_plan() is None


# ----------------------------------------------------------------------
# Unified per-document isolation (satellite fix)
# ----------------------------------------------------------------------
class TestUnifiedIsolation:
    """An unexpected exception is wrapped identically on every path."""

    QUERY = "//b"
    PLAN = FaultPlan.parse("raise@document:index=2")

    def _run(self, **kwargs):
        collection = XPathSession().parse_collection(SOURCES)
        with inject(self.PLAN):
            return collection.select(self.QUERY, **kwargs)

    def test_serial_wraps_instead_of_raising(self):
        batch = self._run()
        assert not batch.ok
        error = batch[2].error
        assert isinstance(error, UnexpectedEvaluationError)
        assert error.original_type == "InjectedFault"
        assert all(batch[i].ok for i in (0, 1, 3, 4, 5))

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_parallel_wraps_identically_to_serial(self, backend):
        serial = self._run()
        parallel = self._run(parallel=True, backend=backend, max_workers=2)
        # Value equality across the pickle boundary: same type, args, attrs.
        assert parallel[2].error == serial[2].error
        assert _shape(parallel) == _shape(serial)
        # No chunk was lost — a document-site fault is not a worker fault.
        assert parallel.failure_report is None


# ----------------------------------------------------------------------
# Worker-failure recovery
# ----------------------------------------------------------------------
class TestWorkerRecovery:
    QUERY = "//b"

    @pytest.fixture()
    def session(self):
        return XPathSession()

    def _serial_shape(self, session):
        return _shape(session.parse_collection(SOURCES).select(self.QUERY))

    def test_process_kill_recovered_by_retry(self, session):
        collection = session.parse_collection(SOURCES)
        with inject(FaultPlan.parse("kill@chunk:index=0,max_attempt=1")):
            with ParallelExecutor(backend="process", max_workers=2) as ex:
                batch = collection.select(
                    self.QUERY, parallel=ex, retries=FAST_RETRY
                )
        assert batch.ok
        assert _shape(batch) == self._serial_shape(session)
        report = batch.failure_report
        assert report is not None
        assert report.worker_failures >= 1
        assert any(fate.outcome == "lost" for fate in report.fates)
        assert any(
            fate.outcome == "ok" and fate.attempt > 0 for fate in report.fates
        )
        assert report.degraded_chunks == 0
        assert session.stats.worker_failures >= 1
        assert session.stats.retries >= 1

    def test_process_kill_every_attempt_degrades_to_serial(self, session):
        collection = session.parse_collection(SOURCES)
        with inject(FaultPlan.parse("kill@chunk:index=0")):
            with ParallelExecutor(backend="process", max_workers=2) as ex:
                batch = collection.select(
                    self.QUERY, parallel=ex,
                    retries=RetryPolicy(max_attempts=2, backoff_base=0.01),
                )
        assert batch.ok  # degradation is invisible in the results
        assert _shape(batch) == self._serial_shape(session)
        report = batch.failure_report
        assert "process->serial" in report.backend_transitions
        assert report.degraded_chunks >= 1
        assert session.stats.degraded_chunks >= 1

    def test_corrupt_result_wire_recovered(self, session):
        collection = session.parse_collection(SOURCES)
        with inject(FaultPlan.parse("corrupt@chunk:index=0,max_attempt=1")):
            with ParallelExecutor(backend="process", max_workers=2) as ex:
                batch = collection.select(
                    self.QUERY, parallel=ex, retries=FAST_RETRY
                )
        assert batch.ok
        assert _shape(batch) == self._serial_shape(session)
        assert batch.failure_report.worker_failures >= 1

    def test_thread_chunk_raise_recovered(self, session):
        collection = session.parse_collection(SOURCES)
        with inject(FaultPlan.parse("raise@chunk:index=0,max_attempt=1")):
            batch = collection.select(
                self.QUERY, parallel=True, backend="thread", max_workers=2,
                retries=FAST_RETRY,
            )
        assert batch.ok
        assert _shape(batch) == self._serial_shape(session)
        assert batch.failure_report.worker_failures >= 1
        assert batch.degraded

    def test_chunks_are_split_on_retry(self, session):
        collection = session.parse_collection(SOURCES)
        with inject(FaultPlan.parse("raise@chunk:index=0,max_attempt=1")):
            with ParallelExecutor(
                backend="thread", max_workers=2, chunk_size=len(SOURCES)
            ) as ex:
                batch = collection.select(
                    self.QUERY, parallel=ex, retries=FAST_RETRY
                )
        assert batch.ok
        retried = [f for f in batch.failure_report.fates if f.attempt > 0]
        assert len(retried) >= 2  # the one big chunk came back as halves
        lost = [f for f in batch.failure_report.fates if f.outcome == "lost"]
        assert len(lost[0].indices) == len(SOURCES)

    def test_fail_fast_abandons_instead_of_retrying(self, session):
        collection = session.parse_collection(SOURCES)
        with inject(FaultPlan.parse("kill@chunk:index=0,max_attempt=1")):
            with ParallelExecutor(
                backend="process", max_workers=1, chunk_size=2
            ) as ex:
                batch = collection.select(
                    self.QUERY, parallel=ex, retries=FAST_RETRY, fail_fast=True,
                )
        assert not batch.ok
        assert isinstance(batch[0].error, WorkerLostError)
        assert batch[0].error.attempts == 1
        # Everything was resolved on attempt 0 — no retries under fail_fast.
        assert all(fate.attempt == 0 for fate in batch.failure_report.fates)
        # Later entries either finished before the failure or were cancelled.
        for result in list(batch)[2:]:
            assert result.ok or isinstance(result.error, BatchAborted)

    def test_source_collection_recovery(self, session):
        collection = session.stream_collection(SOURCES)
        serial = collection.select(self.QUERY, stream=True)
        with inject(FaultPlan.parse("kill@chunk:index=1,max_attempt=1")):
            with ParallelExecutor(backend="process", max_workers=2) as ex:
                batch = collection.select(
                    self.QUERY, stream=True, parallel=ex, retries=FAST_RETRY
                )
        assert batch.ok
        assert _shape(batch) == _shape(serial)
        assert batch.failure_report.worker_failures >= 1


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadline:
    QUERY = "//b"

    def test_hung_worker_converts_to_limit_error_within_deadline(self):
        """The ISSUE-6 acceptance scenario: an injected per-document hang
        converts to ``ResourceLimitExceeded`` within the batch deadline
        instead of stalling the batch."""
        session = XPathSession()
        collection = session.parse_collection(SOURCES)
        serial = collection.select(self.QUERY)
        started = time.monotonic()
        with inject(FaultPlan.parse("hang@document:index=1,seconds=2.5")):
            with ParallelExecutor(
                backend="process", max_workers=2, chunk_size=1
            ) as ex:
                batch = collection.select(
                    self.QUERY, parallel=ex, deadline=0.5, retries=FAST_RETRY
                )
        elapsed = time.monotonic() - started
        assert elapsed < 2.0  # the 2.5 s hang did not stall the batch
        error = batch[1].error
        assert isinstance(error, ResourceLimitExceeded)
        assert error.limit == "batch_deadline"
        report = batch.failure_report
        assert report is not None and report.hung_chunks >= 1
        # Documents that completed before the deadline match serial exactly.
        for index, result in enumerate(batch):
            if result.ok:
                assert _shape(batch)[index] == _shape(serial)[index]

    def test_hung_process_workers_are_terminated(self):
        """``_abandon_pool`` must kill hung process workers outright:
        ``concurrent.futures`` joins surviving workers at interpreter
        exit, so a leaked hung worker would hold the whole program
        hostage until the hang ended — long after the batch returned."""
        before = set(p.pid for p in multiprocessing.active_children())
        session = XPathSession()
        collection = session.parse_collection(SOURCES)
        with inject(FaultPlan.parse("hang@document:index=1,seconds=5.0")):
            with ParallelExecutor(
                backend="process", max_workers=2, chunk_size=1
            ) as ex:
                batch = collection.select(
                    self.QUERY, parallel=ex, deadline=0.4, retries=FAST_RETRY
                )
        assert batch.failure_report is not None
        assert batch.failure_report.hung_chunks >= 1
        # SIGTERM needs a moment to land; well under the 5 s hang.
        cutoff = time.monotonic() + 3.0
        while time.monotonic() < cutoff:
            leaked = [
                p for p in multiprocessing.active_children()
                if p.pid not in before
            ]
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"hung workers survived _abandon_pool: {leaked}"

    def test_deadline_survives_wall_clock_jump(self, monkeypatch):
        """Regression (ISSUE 9): batch deadlines were computed on
        ``time.time()`` while ``LimitGuard`` measures on
        ``time.monotonic()``, so a wall-clock step (NTP correction, DST,
        an admin ``date`` call) mid-batch inflated or collapsed every
        per-document budget.  Deadlines now live entirely on the
        monotonic clock: a one-hour forward jump right after the deadline
        is set must not fail a batch with 30 s of budget."""
        session = XPathSession()
        collection = session.parse_collection(SOURCES)
        serial = collection.select(self.QUERY)
        base = time.time()
        calls = [0]

        def jumping_time():
            calls[0] += 1
            return base if calls[0] == 1 else base + 3600.0

        monkeypatch.setattr(time, "time", jumping_time)
        batch = collection.select(self.QUERY, deadline=30.0)
        assert batch.ok, (
            "a wall-clock jump collapsed the monotonic batch deadline"
        )
        assert _shape(batch) == _shape(serial)

    def test_deadline_survives_wall_clock_jump_threaded(self, monkeypatch):
        """Same regression through the thread backend: the executor's
        future-wait timeout and retry backoff clamp must also ignore the
        wall clock."""
        session = XPathSession()
        collection = session.parse_collection(SOURCES)
        serial = collection.select(self.QUERY)
        base = time.time()
        calls = [0]

        def jumping_time():
            calls[0] += 1
            return base if calls[0] == 1 else base + 3600.0

        monkeypatch.setattr(time, "time", jumping_time)
        with ParallelExecutor(backend="thread", max_workers=2) as ex:
            batch = collection.select(self.QUERY, parallel=ex, deadline=30.0)
        assert batch.ok
        assert _shape(batch) == _shape(serial)

    def test_serial_deadline_bounds_the_batch(self):
        session = XPathSession()
        collection = session.parse_collection(SOURCES)
        started = time.monotonic()
        with inject(FaultPlan.parse("hang@document:index=0,seconds=0.4")):
            batch = collection.select(self.QUERY, deadline=0.2)
        assert time.monotonic() - started < 2.0
        # The hang consumed the whole budget: doc 0 (and the rest, whose
        # remaining budget is 0) fail with the batch_deadline limit error.
        assert isinstance(batch[0].error, ResourceLimitExceeded)
        assert batch[0].error.limit == "batch_deadline"

    def test_streaming_token_delay_hits_timeout(self):
        session = XPathSession()
        source = "<a>" + "<b/>" * 50 + "</a>"
        with inject(FaultPlan.parse("delay@stream.token:index=10,seconds=0.4")):
            with pytest.raises(ResourceLimitExceeded) as info:
                session.stream(
                    "//b", source, limits=EvalLimits(timeout_seconds=0.1)
                )
        assert info.value.limit == "timeout_seconds"

    def test_source_collection_stream_deadline(self):
        session = XPathSession()
        collection = session.stream_collection(
            ["<a>" + "<b/>" * 50 + "</a>"] * 3
        )
        with inject(FaultPlan.parse("delay@stream.token:index=10,seconds=0.3")):
            batch = collection.select("//b", stream=True, deadline=0.2)
        assert not batch.ok
        assert any(
            isinstance(r.error, ResourceLimitExceeded) for r in batch
        )

    def test_serial_fail_fast_cancels_remaining(self):
        session = XPathSession()
        collection = session.parse_collection(SOURCES)
        # parallel=False pins the serial path even under
        # REPRO_PARALLEL_DEFAULT=1 — this test asserts *serial* fail_fast
        # ordering (parallel fail_fast lets in-flight chunks finish).
        with inject(FaultPlan.parse("raise@document:index=1")):
            batch = collection.select(self.QUERY, fail_fast=True, parallel=False)
        assert batch[0].ok
        assert isinstance(batch[1].error, UnexpectedEvaluationError)
        for result in list(batch)[2:]:
            assert isinstance(result.error, BatchAborted)


# ----------------------------------------------------------------------
# Reports and errors across the pickle boundary (satellite fix)
# ----------------------------------------------------------------------
class TestReportsPickle:
    def test_errors_round_trip_equal(self):
        errors = [
            ResourceLimitExceeded("batch_deadline", "deadline expired"),
            WorkerLostError("worker lost evaluating document 3", attempts=2),
            UnexpectedEvaluationError.wrap(ValueError("boom")),
            BatchAborted("cancelled by fail_fast"),
        ]
        for error in errors:
            clone = pickle.loads(pickle.dumps(error))
            assert clone == error
            assert hash(clone) == hash(error)

    def test_error_inequality_is_structural(self):
        assert WorkerLostError("m", attempts=1) != WorkerLostError("m", attempts=2)
        assert WorkerLostError("m", attempts=1) != BatchAborted("m")
        assert UnexpectedEvaluationError.wrap(ValueError("x")) != (
            UnexpectedEvaluationError.wrap(TypeError("x"))
        )

    def test_failure_report_round_trips(self):
        report = FailureReport(
            fates=[
                ChunkFate((0, 1), 0, "process", "lost", "BrokenProcessPool: x"),
                ChunkFate((0,), 1, "process", "ok"),
                ChunkFate((1,), 1, "process", "degraded"),
            ],
            backend_transitions=["process retry 1", "process->serial"],
        )
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report
        assert clone.worker_failures == 1
        assert clone.retries == 1
        assert clone.degraded_chunks == 1
        assert "process->serial" in clone.summary()
        assert "docs [0, 1]" in report.fates[0].describe()


# ----------------------------------------------------------------------
# Chaos differential
# ----------------------------------------------------------------------
class TestChaosDifferential:
    """Seeded random fault plans: survivors must equal the serial run."""

    QUERIES = ["//b", "count(//b)"]
    SEEDS = seeds_from_env(default=(11, 23, 37))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_successful_documents_match_serial(self, seed):
        session = XPathSession()
        collection = session.parse_collection(SOURCES)
        plan = FaultPlan.random(seed, documents=len(SOURCES))
        for query in self.QUERIES:
            baseline = _shape(collection.evaluate(query))
            with inject(plan):
                with ParallelExecutor(
                    backend="process", max_workers=2, chunk_size=2
                ) as ex:
                    chaotic = collection.evaluate(
                        query, parallel=ex, retries=FAST_RETRY, deadline=10.0
                    )
            for index, result in enumerate(chaotic):
                if result.ok:
                    assert _shape(chaotic)[index] == baseline[index], (
                        seed, query, plan.to_spec()
                    )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_recoverable_faults_heal_completely(self, seed):
        session = XPathSession()
        collection = session.parse_collection(SOURCES)
        plan = FaultPlan.random(
            seed, documents=len(SOURCES), recoverable_only=True
        )
        retry = RetryPolicy(max_attempts=4, backoff_base=0.01, backoff_cap=0.05)
        for query in self.QUERIES:
            baseline = _shape(collection.evaluate(query))
            with inject(plan):
                with ParallelExecutor(
                    backend="process", max_workers=2, chunk_size=2
                ) as ex:
                    healed = collection.evaluate(
                        query, parallel=ex, retries=retry
                    )
            assert healed.ok, (seed, query, plan.to_spec())
            assert _shape(healed) == baseline
