"""Tests for the fragment classifiers, the Core XPath algebra, XPatterns and
the Extended Wadler Fragment (paper Sections 10–11 and Figure 1)."""

from __future__ import annotations

import pytest

from repro.errors import FragmentError
from repro.fragments import (
    CoreXPathEngine,
    Fragment,
    XPatternsEngine,
    classify,
    containment_holds,
    first_of_any,
    first_of_type,
    is_core_xpath,
    is_extended_wadler,
    is_xpatterns,
    last_of_any,
    last_of_type,
    wadler_violations,
)
from repro.engines import TopDownEngine
from repro.workloads.documents import doc_library
from repro.workloads.queries import (
    EXAMPLE_10_3_QUERY,
    experiment1_query,
    experiment2_query,
    experiment3_query,
)
from repro.xmlmodel.parser import parse_xml
from repro.xpath.normalize import compile_query


class TestCoreXPathMembership:
    @pytest.mark.parametrize(
        "query",
        [
            "/descendant::a/child::b",
            "//a/b",
            "//a[b]",
            "//a[b and not(c)]",
            "//a[descendant::b or following::c]/parent::*",
            EXAMPLE_10_3_QUERY,
            "/a/b[ancestor::a]",
            "//*[not(child::*)]",
            "//a[child::b[child::c]]",
        ],
    )
    def test_accepted(self, query):
        assert is_core_xpath(compile_query(query))

    @pytest.mark.parametrize(
        "query",
        [
            "//a[position() = 2]",  # positions
            "//a[count(b) > 1]",  # arithmetic / aggregation
            "//a[@href]",  # attribute axis (XPatterns, not Core XPath)
            "//a[. = 'x']",  # string comparison (XPatterns)
            "count(//a)",  # not a location path
            "//a | //b",  # union at top level is outside the cxp grammar
            "id('x')/a",  # id start (XPatterns)
            "//a[b = c]",  # general comparison
        ],
    )
    def test_rejected(self, query):
        assert not is_core_xpath(compile_query(query))


class TestCoreXPathEngine:
    def test_simple_query(self, figure8):
        result = CoreXPathEngine().select("//b[child::d]", figure8)
        assert [n.attribute_value("id") for n in result] == ["11", "21"]

    def test_rejects_non_core_queries(self, figure8):
        with pytest.raises(FragmentError):
            CoreXPathEngine().evaluate("//a[position() = 1]", figure8)

    def test_negation_predicate(self, figure8):
        result = CoreXPathEngine().select("//*[not(child::*)]", figure8)
        expected = TopDownEngine().select("//*[not(child::*)]", figure8)
        assert result == expected

    def test_nested_path_predicates(self, figure8):
        query = "//*[child::c[following-sibling::d]]"
        assert CoreXPathEngine().select(query, figure8) == TopDownEngine().select(query, figure8)

    def test_relative_query_uses_context(self, figure8):
        b11 = figure8.element_by_id("11")
        result = CoreXPathEngine().select("child::c", figure8, b11)
        assert [n.attribute_value("id") for n in result] == ["12", "13"]


class TestXPatternsMembership:
    @pytest.mark.parametrize(
        "query",
        [
            "//a[@href]",
            "//a[@href = 'x']",
            "//b[. = '100']",
            "//b[child::* = 'c']",
            "id('k')/child::a",
            "id('k1 k2')",
            "//a[child::text()]",
            experiment2_query(2),
        ],
    )
    def test_accepted(self, query):
        assert is_xpatterns(compile_query(query))

    @pytest.mark.parametrize(
        "query",
        [
            "//a[position() = 1]",
            "//a[count(b) = 2]",
            experiment3_query(1),
            "count(//a)",
            "//a[string-length(.) > 1]",
        ],
    )
    def test_rejected(self, query):
        assert not is_xpatterns(compile_query(query))

    def test_core_xpath_is_contained_in_xpatterns(self):
        for query in ["//a/b", "//a[b and not(c)]", EXAMPLE_10_3_QUERY]:
            expression = compile_query(query)
            assert is_core_xpath(expression)
            assert is_xpatterns(expression)


class TestXPatternsEngine:
    def test_string_equality_predicate(self, figure8):
        query = "//*[child::text() = '100']"
        assert XPatternsEngine().select(query, figure8) == TopDownEngine().select(query, figure8)

    def test_attribute_predicate(self, figure8):
        query = "//*[attribute::id = '22']"
        assert XPatternsEngine().select(query, figure8) == TopDownEngine().select(query, figure8)

    def test_experiment2_queries_run_in_the_fragment(self):
        """The Experiment-2 family is XPatterns: nested path = 'c' predicates."""
        from repro.workloads.documents import doc_flat_text

        document = doc_flat_text(5)
        for size in (1, 2, 3):
            query = experiment2_query(size)
            linear = XPatternsEngine().select(query, document)
            general = TopDownEngine().select(query, document)
            assert linear == general

    def test_id_start_path(self, figure8):
        query = "id('11')/child::c"
        assert XPatternsEngine().select(query, figure8) == TopDownEngine().select(query, figure8)

    def test_id_axis_on_referencing_text(self, idref_doc):
        # id(//t) follows the ids mentioned in the t elements' text.
        query = "id('1')"
        assert XPatternsEngine().select(query, idref_doc) == TopDownEngine().select(
            query, idref_doc
        )

    @pytest.fixture
    def attribute_ref_doc(self):
        return parse_xml(
            '<catalog><book id="b1"><title>A</title></book>'
            '<book id="b2"><title>B</title></book>'
            '<review of="b2">r</review></catalog>'
        )

    def test_id_of_attribute_node_set(self, attribute_ref_doc):
        # id() over a node set dereferences each node's *string value*; for
        # attribute nodes that is the attribute text, which the element-level
        # ref relation does not cover (regression: xpatterns returned ∅ here
        # while every other engine resolved the reference).
        query = "id(//review/attribute::of)/child::title"
        linear = XPatternsEngine().select(query, attribute_ref_doc)
        general = TopDownEngine().select(query, attribute_ref_doc)
        assert [n.string_value() for n in linear] == ["B"]
        assert linear == general

    def test_id_of_attribute_in_backward_predicate(self, attribute_ref_doc):
        # Bare id(π) predicates are in the fragment (the membership test
        # accepts them) and must therefore compile.
        query = "//*[id(attribute::of)]"
        linear = XPatternsEngine().select(query, attribute_ref_doc)
        assert [n.name for n in linear] == ["review"]
        assert linear == TopDownEngine().select(query, attribute_ref_doc)

    def test_id_literal_predicate_is_context_independent(self, attribute_ref_doc):
        # [id('k')/π] holds everywhere or nowhere (dom-if-nonempty).
        holds = "//title[id('b2')/child::title]"
        empty = "//title[id('zzz')/child::title]"
        for query, expected in ((holds, 2), (empty, 0)):
            linear = XPatternsEngine().select(query, attribute_ref_doc)
            assert len(linear) == expected
            assert linear == TopDownEngine().select(query, attribute_ref_doc)

    def test_rejects_positional_queries(self, figure8):
        with pytest.raises(FragmentError):
            XPatternsEngine().evaluate("//a[position() = 1]", figure8)


class TestUnaryPredicateSets:
    def test_first_and_last_of_any(self):
        doc = parse_xml("<a><b/><c/><b/></a>")
        a = doc.document_element
        first = first_of_any(doc)
        last = last_of_any(doc)
        assert a.children[0] in first and a.children[2] not in first
        assert a.children[2] in last and a.children[0] not in last
        # The document element is both (it is its parent's only child).
        assert a in first and a in last

    def test_first_and_last_of_type(self):
        doc = parse_xml("<a><b/><c/><b/><c/></a>")
        children = doc.document_element.children
        first = first_of_type(doc)
        last = last_of_type(doc)
        assert children[0] in first and children[1] in first
        assert children[2] not in first
        assert children[2] in last and children[3] in last
        assert children[0] not in last

    def test_first_of_type_with_name_restriction(self):
        doc = parse_xml("<a><b/><c/><b/></a>")
        restricted = first_of_type(doc, names={"b"})
        assert all(node.name == "b" for node in restricted)


class TestExtendedWadler:
    @pytest.mark.parametrize(
        "query",
        [
            "//a[boolean(child::b)]",
            "//a[child::b = 'x']",
            "//a[position() != last()]",
            "//a[position() mod 2 = 1]",
            "//a/child::*[boolean(following::b) and position() > 1]",
            "id('k')/child::a",
            experiment1_query(3),
            experiment2_query(2),
        ],
    )
    def test_accepted(self, query):
        assert is_extended_wadler(compile_query(query)), wadler_violations(compile_query(query))

    @pytest.mark.parametrize(
        "query, keyword",
        [
            ("//a[count(b) > 1]", "count"),
            ("//a[sum(b) > 1]", "sum"),
            ("//a[string-length(.) > 1]", "string-length"),
            ("//a[name() = 'a']", "name"),
            ("//a[b = c]", "node-set RelOp node-set"),
            ("//a[child::b = string(child::c)]", "string"),
            ("//a[child::b > position()]", "scalar must not depend"),
        ],
    )
    def test_rejected_with_reason(self, query, keyword):
        violations = wadler_violations(compile_query(query))
        assert violations
        assert any(keyword in violation for violation in violations)

    def test_core_xpath_contained_in_extended_wadler(self):
        for query in ["//a/b", "//a[b and not(c)]", EXAMPLE_10_3_QUERY]:
            assert is_extended_wadler(compile_query(query))


class TestFigure1Lattice:
    def test_classification_examples(self):
        assert classify("//a/b[child::c]").fragment is Fragment.CORE_XPATH
        assert classify("//a[@x = '1']").fragment is Fragment.XPATTERNS
        assert classify("//a[position() != last()]").fragment is Fragment.EXTENDED_WADLER
        assert classify(experiment3_query(1)).fragment is Fragment.FULL_XPATH

    def test_classification_carries_complexity_and_engine(self):
        result = classify("//a/b")
        assert "O(|D|·|Q|)" in result.complexity
        assert result.recommended_engine == "corexpath"
        assert classify(experiment3_query(1)).recommended_engine == "optmincontext"

    @pytest.mark.parametrize(
        "query",
        [
            "//a/b",
            "//a[@x]",
            "//a[position() = 2]",
            experiment2_query(2),
            experiment3_query(1),
            "count(//a)",
        ],
    )
    def test_containments_hold(self, query):
        assert containment_holds(query)

    def test_auto_engine_selection(self):
        import repro

        document = doc_library(books=6, seed=1)
        auto = repro.select("//book[related]", document, engine="auto")
        default = repro.select("//book[related]", document)
        assert auto == default
