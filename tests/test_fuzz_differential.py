"""Grammar-driven differential fuzzing of all engines, cached and uncached.

A seeded generator derives random Core XPath / XPatterns queries from the
fragment grammars of Section 10 (location paths over the navigational axes;
predicates that are and/or/not combinations of existential paths; attribute
tests and string-equality tests for the XPatterns round).  Every generated
query is evaluated by every registered engine — through a cold compile, a
fresh plan cache, and the shared default cache — and all node-set results
must be identical.

The seed is fixed (`FUZZ_SEED`, overridable via the REPRO_FUZZ_SEED
environment variable) so CI runs are reproducible; bump the iteration count
locally for deeper sweeps.
"""

import os
import random

import pytest

from repro import api
from repro.engines.base import EvalLimits
from repro.errors import ResourceLimitExceeded
from repro.parallel import ParallelExecutor
from repro.plan import PlanCache, plan_for
from repro.session import XPathSession
from repro.streaming import stream_select
from repro.workloads import random_edit_script
from repro.workloads.documents import doc_figure8, doc_flat, random_document
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import serialize

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260731"))
CORE_QUERY_COUNT = 60
XPATTERNS_QUERY_COUNT = 30

#: Navigational axes of the Core XPath grammar (Section 10.1).
AXES = (
    "self",
    "child",
    "parent",
    "descendant",
    "ancestor",
    "descendant-or-self",
    "ancestor-or-self",
    "following",
    "preceding",
    "following-sibling",
    "preceding-sibling",
)
NAME_TESTS = ("a", "b", "c", "*")
KIND_TESTS = ("node()", "text()", "comment()")

DOCUMENTS = {
    "flat": doc_flat(5),
    "figure8": doc_figure8(),
    "random17": random_document(17, max_depth=3, max_children=3),
    "random42": random_document(42, max_depth=3, max_children=3),
}

ENGINES = sorted(api.ENGINE_CLASSES)


class QueryGrammar:
    """Random derivations of the Core XPath / XPatterns grammars."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    # -- Core XPath (Section 10.1) -------------------------------------
    def core_query(self) -> str:
        absolute = self.rng.random() < 0.6
        steps = [self.core_step(depth=0) for _ in range(self.rng.randint(1, 3))]
        return ("/" if absolute else "") + "/".join(steps)

    def core_step(self, depth: int) -> str:
        axis = self.rng.choice(AXES)
        # Kind tests are rarer, mirroring real query mixes.
        test = (
            self.rng.choice(KIND_TESTS)
            if self.rng.random() < 0.15
            else self.rng.choice(NAME_TESTS)
        )
        step = f"{axis}::{test}"
        if depth < 2 and self.rng.random() < 0.4:
            step += f"[{self.core_predicate(depth + 1)}]"
        return step

    def core_predicate(self, depth: int) -> str:
        roll = self.rng.random()
        if roll < 0.2 and depth < 2:
            return (
                f"{self.core_predicate(depth + 1)} "
                f"{self.rng.choice(('and', 'or'))} "
                f"{self.core_predicate(depth + 1)}"
            )
        if roll < 0.35:
            return f"not({self.core_predicate(depth + 1)})"
        steps = "/".join(self.core_step(depth + 1) for _ in range(self.rng.randint(1, 2)))
        return ("/" + steps) if self.rng.random() < 0.15 else steps

    # -- XPatterns additions (Section 10.2) ----------------------------
    def xpatterns_query(self) -> str:
        steps = [self.core_step(depth=1) for _ in range(self.rng.randint(1, 2))]
        victim = self.rng.randrange(len(steps))
        steps[victim] += f"[{self.xpatterns_predicate()}]"
        return ("/" if self.rng.random() < 0.5 else "") + "/".join(steps)

    def xpatterns_predicate(self) -> str:
        roll = self.rng.random()
        if roll < 0.35:
            return self.rng.choice(("@id", "@*", "@href"))
        if roll < 0.55:
            return self.rng.choice(("text()", "comment()"))
        path = "/".join(self.core_step(depth=2) for _ in range(self.rng.randint(1, 2)))
        op = self.rng.choice(("=", "!="))
        literal = self.rng.choice(("17", "c", ""))
        return f"{path} {op} '{literal}'"


def _generate(kind: str, count: int) -> list[str]:
    grammar = QueryGrammar(FUZZ_SEED if kind == "core" else FUZZ_SEED + 1)
    produce = grammar.core_query if kind == "core" else grammar.xpatterns_query
    queries, seen = [], set()
    while len(queries) < count:
        query = produce()
        if query not in seen:
            seen.add(query)
            queries.append(query)
    return queries


CORE_QUERIES = _generate("core", CORE_QUERY_COUNT)
XPATTERNS_QUERIES = _generate("xpatterns", XPATTERNS_QUERY_COUNT)


def _orders(engine: str, query, document) -> list[int]:
    nodes = api.get_engine(engine).select(query, document)
    return [node.order for node in nodes]


def _assert_engines_agree(query: str, accepted_engines):
    """All engines agree, with and without plan caching, on all documents."""
    private_cache = PlanCache(maxsize=64)
    for doc_name, document in DOCUMENTS.items():
        reference = None
        for engine in accepted_engines:
            uncached = _orders(engine, plan_for(query, engine=engine, cache=None), document)
            fresh_cached = _orders(
                engine,
                private_cache.get_or_compile(query, engine=engine),
                document,
            )
            shared_cached = _orders(engine, query, document)  # default cache
            assert uncached == fresh_cached == shared_cached, (
                f"{engine} disagrees with itself on {query!r} over {doc_name}"
            )
            if reference is None:
                reference = (engine, uncached)
            else:
                assert uncached == reference[1], (
                    f"{engine} vs {reference[0]} on {query!r} over {doc_name}: "
                    f"{uncached} != {reference[1]}"
                )


@pytest.mark.parametrize("query", CORE_QUERIES, ids=range(len(CORE_QUERIES)))
def test_core_xpath_fuzz_all_engines_agree(query):
    # Core XPath queries are accepted by every engine, fragment ones included.
    assert api.classify_query(query).in_core_xpath, query
    _assert_engines_agree(query, ENGINES)


@pytest.mark.parametrize(
    "query", XPATTERNS_QUERIES, ids=range(len(XPATTERNS_QUERIES))
)
def test_xpatterns_fuzz_all_engines_agree(query):
    # XPatterns queries fall outside Core XPath's engine only when they use
    # the extensions; evaluate with every engine that accepts the fragment.
    info = api.classify_query(query)
    assert info.in_xpatterns, query
    engines = ENGINES if info.in_core_xpath else [e for e in ENGINES if e != "corexpath"]
    _assert_engines_agree(query, engines)


def test_generation_is_deterministic_for_fixed_seed():
    assert _generate("core", 10) == _generate("core", 10)
    assert _generate("xpatterns", 5) == _generate("xpatterns", 5)


# ----------------------------------------------------------------------
# Serial ≡ parallel differential (ISSUE 4)
#
# Every fuzzed (document, query, engine) case also runs through the
# ParallelExecutor — both backends — as a collection batch over all fuzz
# documents, and must match the serial batch result node-for-node,
# per-document failures included.
# ----------------------------------------------------------------------
ALL_QUERIES = CORE_QUERIES + XPATTERNS_QUERIES

#: A dedicated session so the parallel sweep shares plans across the three
#: evaluations of each (query, engine) pair without touching the default
#: session's telemetry.
_PARALLEL_SESSION = XPathSession(cache_size=2 * len(ALL_QUERIES) * len(ENGINES))
_PARALLEL_COLLECTION = _PARALLEL_SESSION.collection(
    DOCUMENTS.values(), names=list(DOCUMENTS)
)


@pytest.fixture(scope="module")
def executors():
    """One worker pool per backend, shared by the whole fuzz sweep."""
    with ParallelExecutor(backend="thread", max_workers=2) as thread_pool:
        with ParallelExecutor(backend="process", max_workers=2) as process_pool:
            yield (thread_pool, process_pool)


def _batch_shape(batch) -> list:
    """Per-document fingerprint: result node orders, or the failure type."""
    return [
        tuple(node.order for node in result.nodes)
        if result.ok
        else type(result.error).__name__
        for result in batch
    ]


def _engines_for(query: str) -> list[str]:
    info = api.classify_query(query)
    if info.in_core_xpath:
        return ENGINES
    return [engine for engine in ENGINES if engine != "corexpath"]


@pytest.mark.parametrize("query", ALL_QUERIES, ids=range(len(ALL_QUERIES)))
def test_parallel_batches_match_serial(query, executors):
    for engine in _engines_for(query):
        serial = _PARALLEL_COLLECTION.select(query, engine=engine)
        expected = _batch_shape(serial)
        for executor in executors:
            got = _batch_shape(
                _PARALLEL_COLLECTION.select(query, engine=engine, parallel=executor)
            )
            assert got == expected, (
                f"{executor.backend} backend disagrees with serial for "
                f"{engine} on {query!r}: {got} != {expected}"
            )


# ----------------------------------------------------------------------
# Streaming ↔ tree differential (ISSUE 5)
#
# Every streamable fuzzed query runs through the single-pass streaming
# evaluator over the *serialised* fuzz documents and must match every tree
# engine node-for-node on the re-parsed text (serialise → parse is
# structure-preserving, so the document orders line up).  Resource-limit
# parity rides along: the backend-independent max_result_nodes cap must
# breach identically, and a one-operation budget must abort both backends.
# ----------------------------------------------------------------------
STREAMABLE_QUERIES = [
    query for query in ALL_QUERIES if api.classify_query(query).streamable
]

#: The fixed seed must keep yielding a meaningful streaming sweep; if a
#: grammar change sinks this floor, regenerate or extend the corpus.
MIN_STREAMABLE_CASES = 8

DOCUMENT_SOURCES = {
    name: serialize(document) for name, document in DOCUMENTS.items()
}


def test_fuzz_corpus_has_streamable_cases():
    assert len(STREAMABLE_QUERIES) >= MIN_STREAMABLE_CASES, STREAMABLE_QUERIES


@pytest.mark.parametrize(
    "query", STREAMABLE_QUERIES, ids=range(len(STREAMABLE_QUERIES))
)
def test_streaming_matches_every_tree_engine(query):
    for doc_name, source in DOCUMENT_SOURCES.items():
        document = parse_xml(source)
        streamed = [match.order for match in stream_select(query, source)]
        for engine in _engines_for(query):
            tree = _orders(engine, query, document)
            assert streamed == tree, (
                f"streaming vs {engine} on {query!r} over {doc_name}: "
                f"{streamed} != {tree}"
            )


@pytest.mark.parametrize(
    "query",
    STREAMABLE_QUERIES[: max(MIN_STREAMABLE_CASES, len(STREAMABLE_QUERIES) // 2)],
    ids=range(max(MIN_STREAMABLE_CASES, len(STREAMABLE_QUERIES) // 2)),
)
def test_streaming_limit_parity(query):
    """ResourceLimitExceeded parity between the backends.

    The result-node cap is accounting-independent, so for every document the
    streamed scan must breach exactly when the tree engine does (cap set one
    below the actual result size, then exactly at it); the operation budget
    is accounting-*dependent*, so parity there is behavioural: a minimal
    budget aborts both backends with the same exception type.
    """
    for doc_name, source in DOCUMENT_SOURCES.items():
        document = parse_xml(source)
        result_size = len(api.select(query, document))
        if result_size > 0:
            tight = EvalLimits(max_result_nodes=result_size - 1)
            with pytest.raises(ResourceLimitExceeded):
                stream_select(query, source, limits=tight)
            with pytest.raises(ResourceLimitExceeded):
                api.select(query, document, limits=tight)
        exact = EvalLimits(max_result_nodes=max(result_size, 1))
        assert [m.order for m in stream_select(query, source, limits=exact)] == [
            node.order for node in api.select(query, document, limits=exact)
        ], (query, doc_name)
    minimal = EvalLimits(max_operations=1)
    source = DOCUMENT_SOURCES["figure8"]
    with pytest.raises(ResourceLimitExceeded):
        stream_select(query, source, limits=minimal)
    with pytest.raises(ResourceLimitExceeded):
        api.select(query, parse_xml(source), limits=minimal)


# ----------------------------------------------------------------------
# Compiled array-program ↔ tree differential (ISSUE 7)
#
# The compiled engine is already a member of ENGINES, so every fuzz case
# above runs it against the other eight engines (and the streamable subset
# against the streaming evaluator).  The tests below pin down what that
# sweep alone cannot: that compilable cases actually execute the array
# program (not the fallback), and that resource limits abort the array
# path like the interpreters.
# ----------------------------------------------------------------------
COMPILABLE_QUERIES = [
    query for query in ALL_QUERIES if api.classify_query(query).compilable
]

#: The fixed seed must keep the compiled backend meaningfully exercised;
#: the whole fuzz grammar (Core XPath + id-free XPatterns) lowers, so any
#: drop below the corpus size means the classifier or grammar regressed.
MIN_COMPILABLE_CASES = len(ALL_QUERIES) // 2


def test_fuzz_corpus_has_compilable_cases():
    assert len(COMPILABLE_QUERIES) >= MIN_COMPILABLE_CASES, len(COMPILABLE_QUERIES)


_COMPILED_SESSION = XPathSession(engine="compiled", cache_size=2 * len(ALL_QUERIES))


@pytest.mark.parametrize(
    "query", COMPILABLE_QUERIES, ids=range(len(COMPILABLE_QUERIES))
)
def test_compiled_runs_array_path_on_compilable_fuzz_cases(query):
    """Compilable cases execute the array program — no silent fallback."""
    for doc_name, document in DOCUMENTS.items():
        result = _COMPILED_SESSION.run(query, document)
        counters = result.stats.as_dict()
        assert counters.get("compiled_instructions", 0) > 0, (query, doc_name)
        assert counters.get("compiled_fallbacks", 0) == 0, (query, doc_name)
        assert [node.order for node in result.nodes] == _orders(
            "topdown", query, document
        ), (query, doc_name)


@pytest.mark.parametrize(
    "query",
    COMPILABLE_QUERIES[: max(8, len(COMPILABLE_QUERIES) // 4)],
    ids=range(max(8, len(COMPILABLE_QUERIES) // 4)),
)
def test_compiled_limit_parity(query):
    """Limits behave like the interpreters: the result-node cap breaches at
    exactly the same threshold, and a one-operation budget aborts the
    program mid-run."""
    for doc_name, document in DOCUMENTS.items():
        result_size = len(api.select(query, document))
        if result_size > 0:
            tight = EvalLimits(max_result_nodes=result_size - 1)
            with pytest.raises(ResourceLimitExceeded):
                api.select(query, document, engine="compiled", limits=tight)
        exact = EvalLimits(max_result_nodes=max(result_size, 1))
        assert [
            node.order
            for node in api.select(query, document, engine="compiled", limits=exact)
        ] == _orders("topdown", query, document), (query, doc_name)
    minimal = EvalLimits(max_operations=1)
    with pytest.raises(ResourceLimitExceeded):
        api.select(query, DOCUMENTS["figure8"], engine="compiled", limits=minimal)


# ----------------------------------------------------------------------
# Edit-interleaved fuzzing (ISSUE 10)
#
# The grammar-driven queries also run against documents that mutate
# between evaluations: evaluate → random edit script → evaluate again,
# round after round.  After every round all engines must agree with a
# serialize → reparse reference, so the incrementally repaired index is
# differentially checked against the from-scratch parser path at each
# intermediate generation — not just once at the end.
# ----------------------------------------------------------------------
INTERLEAVED_QUERIES = ALL_QUERIES[::8]
EDIT_ROUNDS = 4
EDITS_PER_ROUND = 3


@pytest.mark.parametrize("doc_seed", (19, 37))
def test_fuzz_queries_survive_interleaved_edits(doc_seed):
    document = random_document(doc_seed, max_depth=4, max_children=4)
    document.index  # live index so every round exercises repair/rebuild
    rng = random.Random(FUZZ_SEED ^ doc_seed)
    for round_number in range(EDIT_ROUNDS):
        random_edit_script(
            document, EDITS_PER_ROUND, seed=rng.randrange(1 << 30)
        )
        reparsed = parse_xml(serialize(document))
        for query in INTERLEAVED_QUERIES:
            expected = _orders("topdown", query, reparsed)
            for engine in _engines_for(query):
                got = _orders(engine, query, document)
                assert got == expected, (
                    f"{engine} on {query!r} diverged from reparse after "
                    f"round {round_number} (doc seed {doc_seed})"
                )
    assert document.generation == EDIT_ROUNDS * EDITS_PER_ROUND
    stats = document.mutation_stats
    assert stats.repairs + stats.rebuilds > 0


@pytest.mark.parametrize(
    "query", CORE_QUERIES[: len(CORE_QUERIES) // 3], ids=range(len(CORE_QUERIES) // 3)
)
def test_parallel_limit_isolation_matches_serial(query, executors):
    """Tight budgets breach on some fuzz documents and not others; the
    per-document ResourceLimitExceeded pattern must be identical in
    parallel, whatever it is."""
    limits = EvalLimits(max_operations=60)
    for engine in ("topdown", "naive"):
        serial = _PARALLEL_COLLECTION.select(query, engine=engine, limits=limits)
        expected = _batch_shape(serial)
        for executor in executors:
            got = _batch_shape(
                _PARALLEL_COLLECTION.select(
                    query, engine=engine, limits=limits, parallel=executor
                )
            )
            assert got == expected, (executor.backend, engine, query)
