"""Mutable documents: edit API, incremental repair, snapshots, staleness.

Unit coverage for the epoch model (ISSUE 10): the five edit primitives and
their validation, generation accounting, repair-vs-rebuild bookkeeping,
copy-on-write snapshots, result staleness, session mutation hooks, the
pickle guard for mutated store-backed documents, and the store lifecycle
(materialize caching, detach-on-close, cache invalidation).

The repair≡rebuild *property* tests live here too: a random edit script is
replayed onto a twin document forced to rebuild its index on every edit,
and onto a serialize→reparse round trip, and all index columns must agree.
"""

import pickle
import pytest

from repro import api
from repro.errors import StaleResultError
from repro.parallel import ParallelExecutor
from repro.session import XPathSession
from repro.store import DocumentStore, StoredIndexArrays, invalidate, open_cached
from repro.workloads import (
    EditOp,
    apply_script,
    random_edit_script,
    script_from_json,
    script_to_json,
)
from repro.workloads.documents import random_document
from repro.xmlmodel.builder import build_fragment
from repro.xmlmodel.document import Document
from repro.xmlmodel.index import DocumentIndex
from repro.xmlmodel.nodes import Node, NodeType
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import serialize


def doc(source: str) -> Document:
    return parse_xml(source)


def _index_columns(index: DocumentIndex) -> dict:
    """Every index column in comparable form (node identity abstracted)."""
    return {
        "orders": [node.order for node in index.nodes],
        "shape": [
            (node.node_type, node.name, node.value) for node in index.nodes
        ],
        "subtree_end": list(index.subtree_end),
        "regular_orders": list(index.regular_orders),
        "by_type": {key: list(value) for key, value in index._by_type_orders.items()},
        "by_label": {key: list(value) for key, value in index._by_label_orders.items()},
    }


def _assert_index_consistent(document: Document) -> None:
    """The (possibly repaired) index equals a from-scratch rebuild."""
    rebuilt = DocumentIndex(document)
    assert _index_columns(document.index) == _index_columns(rebuilt)
    # Dense preorder invariant: nodes[k].order == k.
    assert all(node.order == k for k, node in enumerate(document.index.nodes))


# ----------------------------------------------------------------------
# Edit API semantics
# ----------------------------------------------------------------------
class TestEditAPI:
    def test_insert_child_appends_and_bumps_generation(self):
        document = doc("<r><a/><b/></r>")
        parent = document.document_element
        node = document.insert_child(parent, build_fragment("c", {"id": "9"}))
        assert document.generation == 1
        assert node.document is document
        assert parent.children[-1] is node
        assert [n.order for n in document.index.nodes] == list(range(len(document)))
        assert document.element_by_id("9") is node
        _assert_index_consistent(document)

    def test_insert_child_at_position(self):
        document = doc("<r><a/><c/></r>")
        parent = document.document_element
        document.insert_child(parent, build_fragment("b"), 1)
        assert [child.name for child in parent.children] == ["a", "b", "c"]
        _assert_index_consistent(document)

    def test_insert_rejects_adjacent_text(self):
        document = doc("<r>hello</r>")
        parent = document.document_element
        with pytest.raises(ValueError, match="adjacent text"):
            document.insert_child(parent, Node(NodeType.TEXT, value="x"), 0)
        assert document.generation == 0

    def test_insert_rejects_attached_node(self):
        document = doc("<r><a/></r>")
        other = doc("<s><t/></s>")
        foreign = other.document_element.children[0]
        with pytest.raises(ValueError, match="detached"):
            document.insert_child(document.document_element, foreign)

    def test_insert_rejects_second_document_element(self):
        document = doc("<r/>")
        with pytest.raises(ValueError, match="document element"):
            document.insert_child(document.root, build_fragment("r2"))
        with pytest.raises(ValueError, match="root"):
            document.insert_child(document.root, Node(NodeType.TEXT, value="x"))

    def test_insert_position_out_of_range(self):
        document = doc("<r><a/></r>")
        with pytest.raises(IndexError):
            document.insert_child(document.document_element, build_fragment("b"), 5)

    def test_remove_subtree_detaches_and_renumbers(self):
        document = doc("<r><a><b/><c/></a><d/></r>")
        victim = document.document_element.children[0]
        before = len(document)
        removed = document.remove(victim)
        assert removed is victim
        assert removed.parent is None and removed.document is None
        assert removed.order == -1
        assert len(document) == before - 3
        assert document.generation == 1
        _assert_index_consistent(document)
        # The detached subtree is reusable in another document.
        other = doc("<s/>")
        other.insert_child(other.document_element, removed)
        assert serialize(other) == "<s><a><b/><c/></a></s>"

    def test_remove_merges_adjacent_text(self):
        document = doc("<r>one<x/>two</r>")
        document.remove(document.document_element.children[1])
        texts = [
            n for n in document.index.nodes if n.node_type is NodeType.TEXT
        ]
        assert [t.value for t in texts] == ["onetwo"]
        assert serialize(document) == "<r>onetwo</r>"
        _assert_index_consistent(document)

    def test_remove_root_and_document_element_refused(self):
        document = doc("<r><a/></r>")
        with pytest.raises(ValueError, match="root"):
            document.remove(document.root)
        with pytest.raises(ValueError, match="document element"):
            document.remove(document.document_element)

    def test_rename_element_updates_postings(self):
        document = doc("<r><a/><a/></r>")
        first = document.document_element.children[0]
        document.rename(first, "b")
        assert [n.order for n in document.nodes_of_type_and_name(NodeType.ELEMENT, "b")] == [
            first.order
        ]
        _assert_index_consistent(document)

    def test_rename_same_name_is_silent_noop(self):
        document = doc("<r><a/></r>")
        document.rename(document.document_element.children[0], "a")
        assert document.generation == 0
        assert document.mutation_stats.edits == 0

    def test_rename_rejects_duplicate_attribute_and_bad_names(self):
        document = doc('<r a="1" b="2"/>')
        element = document.document_element
        attr = element.attribute("a")
        with pytest.raises(ValueError, match="duplicate"):
            document.rename(attr, "b")
        with pytest.raises(ValueError, match="invalid XML name"):
            document.rename(element, "1bad")
        with pytest.raises(ValueError, match="cannot rename"):
            document.rename(document.root, "x")

    def test_set_text_variants_and_vetoes(self):
        document = doc("<r>old<!--c--><?pi d?></r>")
        text, comment, pi = document.document_element.children
        document.set_text(text, "new")
        assert text.value == "new"
        assert document.document_element.string_value() == "new"
        with pytest.raises(ValueError, match="empty text"):
            document.set_text(text, "")
        with pytest.raises(ValueError, match="--"):
            document.set_text(comment, "a--b")
        with pytest.raises(ValueError, match=r"\?>"):
            document.set_text(pi, "end?>")
        with pytest.raises(ValueError, match="no direct value"):
            document.set_text(document.document_element, "x")
        _assert_index_consistent(document)

    def test_set_attribute_add_replace_remove(self):
        document = doc("<r><a/></r>")
        element = document.document_element.children[0]
        attr = document.set_attribute(element, "x", "1")
        assert attr.node_type is NodeType.ATTRIBUTE and attr.value == "1"
        assert document.generation == 1
        _assert_index_consistent(document)
        same = document.set_attribute(element, "x", "2")
        assert same is attr and attr.value == "2"
        assert document.generation == 2
        removed = document.set_attribute(element, "x", None)
        assert removed is None and element.attribute("x") is None
        assert document.generation == 3
        # Removing an absent attribute is a no-op, not an edit.
        assert document.set_attribute(element, "x", None) is None
        assert document.generation == 3
        _assert_index_consistent(document)

    def test_id_map_follows_edits(self):
        document = doc('<r><a id="one"/></r>')
        element = document.document_element.children[0]
        document.set_attribute(element, "id", "two")
        assert document.element_by_id("one") is None
        assert document.element_by_id("two") is element
        inserted = document.insert_child(
            document.document_element, build_fragment("b", {"id": "three"})
        )
        assert document.element_by_id("three") is inserted
        document.remove(inserted)
        assert document.element_by_id("three") is None

    def test_stale_handle_after_cow_is_rejected(self):
        document = doc("<r><a/></r>")
        handle = document.document_element.children[0]
        document.snapshot()
        document.insert_child(document.document_element, build_fragment("b"))
        # The copy-on-write replaced the tree; the old handle no longer
        # belongs to the writer's current nodes.
        with pytest.raises(ValueError, match="current tree"):
            document.rename(handle, "c")

    def test_snapshot_views_are_read_only(self):
        document = doc("<r><a/></r>")
        view = document.snapshot()
        with pytest.raises(RuntimeError, match="read-only"):
            view.insert_child(view.document_element, build_fragment("b"))


# ----------------------------------------------------------------------
# Repair vs rebuild accounting
# ----------------------------------------------------------------------
class TestRepairAccounting:
    def test_small_edits_repair_in_place(self):
        document = doc("<r><a/><b/><c/></r>")
        index_before = document.index
        document.insert_child(document.document_element, build_fragment("d"))
        assert document.index is index_before  # repaired, not discarded
        assert document.mutation_stats.repairs == 1
        assert document.mutation_stats.rebuilds == 0

    def test_dirtiness_threshold_triggers_epoch_rebuild(self):
        document = doc("<r>" + "<a/>" * 100 + "</r>")
        document.rebuild_threshold = 0.0  # floor (_REBUILD_MIN_DIRT) governs
        index_before = document.index
        # Inserting at the very front dirties the whole tail (> 64 entries).
        document.insert_child(document.document_element, build_fragment("z"), 0)
        assert document.mutation_stats.rebuilds == 1
        assert document.mutation_stats.repairs == 0
        assert document._index is None  # lazy: rebuilt on next access
        assert document.index is not index_before
        _assert_index_consistent(document)

    def test_dirt_accumulates_across_small_edits(self):
        document = doc("<r>" + "<a/>" * 100 + "</r>")
        parent = document.document_element
        document.index  # live index: edits go through repair accounting
        # Mid-document inserts each dirty half the tail; a few of them must
        # cross the threshold (amortisation, not unbounded decay), while
        # the first ones repair in place.
        for _ in range(10):
            document.insert_child(parent, build_fragment("b"), 50)
            if document.mutation_stats.rebuilds:
                break
        assert document.mutation_stats.repairs >= 1
        assert document.mutation_stats.rebuilds >= 1
        _assert_index_consistent(document)

    def test_index_arrays_are_generation_stamped(self):
        document = doc("<r><a/><a/></r>")
        arrays = document.index.arrays()
        assert arrays.generation == 0
        assert document.index.arrays() is arrays  # cached while unedited
        document.insert_child(document.document_element, build_fragment("a"))
        fresh = document.index.arrays()
        assert fresh is not arrays
        assert fresh.generation == document.generation
        # The compiled engine (sole arrays consumer) sees the new tree.
        assert len(api.select("//a", document, engine="compiled")) == 3


# ----------------------------------------------------------------------
# Repair ≡ rebuild (property tests over random edit scripts)
# ----------------------------------------------------------------------
REPAIR_SEEDS = (5, 18, 19, 26, 37)


class TestRepairEqualsRebuild:
    @pytest.mark.parametrize("seed", REPAIR_SEEDS)
    def test_repaired_index_matches_always_rebuilt_twin(self, seed):
        document = random_document(seed, max_depth=4, max_children=4)
        twin = parse_xml(serialize(document))
        # Force the twin down the epoch-rebuild path on every single edit.
        twin.rebuild_threshold = 0.0
        twin._REBUILD_MIN_DIRT = 0
        document.index, twin.index  # both start with a live index
        script = random_edit_script(document, 12, seed=seed * 31 + 1)
        assert script, "seed produced no edits"
        assert apply_script(twin, script) == len(script)
        # Structural edits on the twin all took the rebuild path (renames
        # and value writes have no structural span and repair regardless).
        assert twin.mutation_stats.rebuilds >= 1
        assert serialize(twin) == serialize(document)
        assert _index_columns(document.index) == _index_columns(twin.index)
        assert document.generation == twin.generation == len(script)

    @pytest.mark.parametrize("seed", REPAIR_SEEDS)
    def test_repaired_index_matches_reparse(self, seed):
        document = random_document(seed, max_depth=4, max_children=4)
        document.index
        random_edit_script(document, 12, seed=seed * 31 + 2)
        reparsed = parse_xml(serialize(document))
        assert _index_columns(document.index) == _index_columns(reparsed.index)
        assert document.id_map().keys() == reparsed.id_map().keys()

    @pytest.mark.parametrize("seed", REPAIR_SEEDS[:3])
    def test_script_json_round_trip_replays_identically(self, seed):
        document = random_document(seed, max_depth=4, max_children=4)
        twin = parse_xml(serialize(document))
        script = random_edit_script(document, 10, seed=seed)
        replayed = script_from_json(script_to_json(script))
        assert replayed == script
        apply_script(twin, replayed)
        assert serialize(twin) == serialize(document)


# ----------------------------------------------------------------------
# Snapshots (copy-on-write)
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_snapshot_shares_until_first_edit(self):
        document = doc("<r><a/><b/></r>")
        view = document.snapshot()
        assert view.is_snapshot and not document.is_snapshot
        assert view.root is document.root  # nothing copied yet
        assert view.generation == document.generation
        assert document.snapshot() is view  # cached between edits
        assert view.snapshot() is view  # snapshot of a snapshot

    def test_edit_after_snapshot_copies_writer_not_view(self):
        document = doc("<r><a/><b/></r>")
        view = document.snapshot()
        old_root = document.root
        document.insert_child(document.document_element, build_fragment("c"))
        assert document.mutation_stats.cow_copies == 1
        assert view.root is old_root  # the view kept the old tree
        assert document.root is not old_root
        assert serialize(view) == "<r><a/><b/></r>"
        assert serialize(document) == "<r><a/><b/><c/></r>"
        assert view.generation == 0 and document.generation == 1
        # A new snapshot after the edit pins the new state.
        assert document.snapshot() is not view

    def test_snapshot_results_never_go_stale(self):
        document = doc("<r><a/><a/></r>")
        session = XPathSession()
        view = document.snapshot()
        result = session.run("//a", view)
        document.remove(document.document_element.children[0])
        # The writer moved on; the pinned result still orders fine.
        assert [n.name for n in result.nodes] == ["a", "a"]
        assert result.generation == view.generation == 0

    def test_only_one_cow_per_snapshot(self):
        document = doc("<r><a/></r>")
        document.snapshot()
        document.insert_child(document.document_element, build_fragment("b"))
        document.insert_child(document.document_element, build_fragment("c"))
        assert document.mutation_stats.cow_copies == 1  # second edit is free


# ----------------------------------------------------------------------
# Result staleness and session hooks
# ----------------------------------------------------------------------
class TestStaleness:
    def test_stale_node_set_raises_positioned_error(self):
        document = doc("<r><a/><a/></r>")
        session = XPathSession()
        result = session.run("//a", document)
        assert result.generation == 0
        assert len(result.nodes) == 2  # fresh: fine
        document.insert_child(document.document_element, build_fragment("a"))
        with pytest.raises(StaleResultError) as excinfo:
            result.nodes
        assert excinfo.value.computed_at == 0
        assert excinfo.value.current == 1
        assert "generation 0" in str(excinfo.value)

    def test_scalar_results_are_not_stamped(self):
        document = doc("<r><a/></r>")
        session = XPathSession()
        result = session.run("count(//a)", document)
        document.insert_child(document.document_element, build_fragment("a"))
        assert result.value == 1.0  # scalars cannot dangle; no staleness

    def test_rerun_after_edit_is_fresh(self):
        document = doc("<r><a/></r>")
        session = XPathSession()
        session.run("//a", document)
        document.insert_child(document.document_element, build_fragment("a"))
        result = session.run("//a", document)
        assert len(result.nodes) == 2
        assert result.generation == 1

    def test_session_watch_counts_mutation_events(self):
        session = XPathSession()
        document = session.watch(doc("<r><a/></r>"))
        document.index  # live index: the first edit takes the repair path
        document.insert_child(document.document_element, build_fragment("b"))
        document.snapshot()
        # The copy-on-write drops the shared index, so this rename has no
        # index to repair — the session sees "cow" + "edit" only.
        document.rename(document.document_element.children[0], "z")
        stats = session.stats.as_dict()
        assert stats["document_edits"] == 2
        assert stats["index_repairs"] == 1
        assert stats["cow_copies"] == 1
        session.unwatch(document)
        document.insert_child(document.document_element, build_fragment("c"))
        assert session.stats.document_edits == 2  # unwatched: no longer folded

    def test_plan_cache_survives_edits(self):
        session = XPathSession()
        document = doc("<r><a/></r>")
        first = session.run("//a", document)
        document.insert_child(document.document_element, build_fragment("a"))
        second = session.run("//a", document)
        assert first.cache_hit is False and second.cache_hit is True
        assert second.plan is first.plan  # plans are generation-independent


# ----------------------------------------------------------------------
# Pickling mutated documents (satellite 1)
# ----------------------------------------------------------------------
class TestMutatedPickle:
    def test_flat_payload_preserves_edits(self):
        document = doc('<r><a id="1">x</a></r>')
        document.insert_child(document.document_element, build_fragment("b"))
        clone = pickle.loads(pickle.dumps(document))
        assert serialize(clone) == serialize(document)
        # Generations are per-process edit epochs, not content versions.
        assert clone.generation == 0
        _assert_index_consistent(clone)

    def test_store_documents_lose_fast_path_once_edited(self, tmp_path):
        path = str(tmp_path / "docs.reproxs")
        DocumentStore.build(path, [doc("<r><a/></r>")], names=["d"])
        with DocumentStore.open(path) as store:
            document = store.document_at(0).materialize()
            clone0 = pickle.loads(pickle.dumps(document))
            assert serialize(clone0) == "<r><a/></r>"  # fast path, same content
            document.insert_child(document.document_element, build_fragment("b"))
            assert document.store_detached
            clone1 = pickle.loads(pickle.dumps(document))
            # The stale store content must not resurrect in the receiver.
            assert serialize(clone1) == "<r><a/><b/></r>"

    def test_process_backend_sees_the_edit(self, tmp_path):
        path = str(tmp_path / "docs.reproxs")
        DocumentStore.build(path, [doc("<r><a/></r>")], names=["d"])
        with DocumentStore.open(path) as store:
            document = store.document_at(0).materialize()
            document.insert_child(document.document_element, build_fragment("a"))
            session = XPathSession()
            collection = session.collection([document])
            with ParallelExecutor(backend="process", max_workers=2) as pool:
                batch = list(collection.select("//a", parallel=pool))
            assert batch[0].ok
            assert len(batch[0].nodes) == 2  # the worker saw the edit


# ----------------------------------------------------------------------
# Store lifecycle with mutable trees (satellite 2)
# ----------------------------------------------------------------------
class TestStoreLifecycle:
    def _build(self, tmp_path) -> str:
        path = str(tmp_path / "docs.reproxs")
        DocumentStore.build(
            path, [doc("<r><a/><a/></r>"), doc("<r><b/></r>")], names=["d0", "d1"]
        )
        return path

    def test_materialize_recaches_after_edit(self, tmp_path):
        path = self._build(tmp_path)
        with DocumentStore.open(path) as store:
            handle = store.document_at(0)
            document = handle.materialize()
            assert handle.materialize() is document  # cached while pristine
            document.remove(document.document_element.children[0])
            fresh = handle.materialize()
            # The handle describes the *stored* content: a fresh
            # generation-0 tree, not the edited one.
            assert fresh is not document
            assert fresh.generation == 0
            assert serialize(fresh) == "<r><a/><a/></r>"
            assert serialize(document) == "<r><a/></r>"

    def test_info_reports_materialized_generations(self, tmp_path):
        path = self._build(tmp_path)
        with DocumentStore.open(path) as store:
            document = store.document_at(0).materialize()
            assert store.info()["materialized_generations"] == {0: 0}
            document.insert_child(document.document_element, build_fragment("c"))
            assert store.info()["materialized_generations"] == {0: 1}

    def test_close_detaches_live_trees(self, tmp_path):
        path = self._build(tmp_path)
        store = DocumentStore.open(path)
        document = store.document_at(0).materialize()
        assert isinstance(document.index._arrays, StoredIndexArrays)
        store.close()
        assert document.store_detached
        assert document._store_origin is None
        # The tree must keep answering — including through the compiled
        # engine, which would otherwise read the released mmap views.
        assert len(api.select("//a", document, engine="compiled")) == 2
        document.insert_child(document.document_element, build_fragment("a"))
        assert len(api.select("//a", document, engine="compiled")) == 3

    def test_invalidate_does_not_orphan_live_trees(self, tmp_path):
        path = self._build(tmp_path)
        store = open_cached(path)
        document = store.document_at(0).materialize()
        assert invalidate(path)  # drops the cache entry and closes the map
        assert len(api.select("//a", document, engine="compiled")) == 2
        document.insert_child(document.document_element, build_fragment("a"))
        assert len(api.select("//a", document)) == 3
        # A later open_cached builds a fresh mapping with the stored content.
        reopened = open_cached(path)
        try:
            fresh = reopened.document_at(0).materialize()
            assert serialize(fresh) == "<r><a/><a/></r>"
        finally:
            invalidate(path)
