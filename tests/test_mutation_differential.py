"""Differential testing of mutated documents (ISSUE 10).

After a random edit script, a document's *repaired* state must be
indistinguishable from a serialize → reparse → query round trip: every
engine, over every axis, must return node-for-node identical answers on
the live mutated tree and on the freshly reparsed twin.  The reparse is
the ground truth — its index is built from scratch by the parser path the
whole original test suite already validates.

The second half stresses snapshot isolation: writer threads keep editing
the collection's documents while query batches run on the serial, thread
and process backends; every batch result must be internally consistent
with exactly one pinned generation per document (zero torn reads).
"""

import random
import threading

import pytest

from repro import api
from repro.parallel import ParallelExecutor
from repro.session import XPathSession
from repro.streaming import stream_select
from repro.workloads import random_edit_script
from repro.workloads.documents import random_document
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import serialize

ENGINES = sorted(api.ENGINE_CLASSES)

#: All thirteen XPath 1.0 axes.
AXES_13 = (
    "self",
    "child",
    "parent",
    "descendant",
    "ancestor",
    "descendant-or-self",
    "ancestor-or-self",
    "following",
    "preceding",
    "following-sibling",
    "preceding-sibling",
    "attribute",
    "namespace",
)

#: One query per axis (applied from every node), plus shapes that lean on
#: the repaired posting lists, the ID map and predicates.
QUERIES = [f"descendant-or-self::node()/{axis}::node()" for axis in AXES_13] + [
    "//a",
    "//*[@id]",
    "/descendant::*[child::a]/child::node()",
    "//b/ancestor::*/following-sibling::a",
    "descendant::text()",
]

#: (seed, with_namespaces) pairs chosen to give 30-150 node documents; the
#: namespace rounds exercise the special-node tail of the preorder table.
CASES = [(5, False), (18, False), (19, False), (26, False), (37, False), (11, True)]

EDITS_PER_SCRIPT = 10


def test_query_list_covers_all_thirteen_axes():
    for axis in AXES_13:
        assert any(f"{axis}::" in query for query in QUERIES), axis


def _engines_for(query: str) -> list[str]:
    info = api.classify_query(query)
    engines = [e for e in ENGINES if e not in ("corexpath", "xpatterns")]
    if info.in_core_xpath:
        engines.append("corexpath")
    if info.in_xpatterns:
        engines.append("xpatterns")
    return sorted(engines)


def _fingerprint(nodes) -> list[tuple]:
    return [(n.order, n.node_type, n.name, n.value) for n in nodes]


def _mutated_pair(seed: int, with_namespaces: bool):
    document = random_document(
        seed, max_depth=4, max_children=4, with_namespaces=with_namespaces
    )
    document.index  # live index so every edit exercises repair/rebuild
    script = random_edit_script(document, EDITS_PER_SCRIPT, seed=seed * 7 + 3)
    assert script, "seed produced no edits"
    reparsed = parse_xml(serialize(document))
    return document, reparsed


@pytest.mark.parametrize("seed,with_namespaces", CASES)
def test_every_engine_matches_reparse_after_mutation(seed, with_namespaces):
    document, reparsed = _mutated_pair(seed, with_namespaces)
    assert len(document) == len(reparsed)
    for query in QUERIES:
        expected = _fingerprint(api.get_engine("topdown").select(query, reparsed))
        for engine in _engines_for(query):
            got = _fingerprint(api.get_engine(engine).select(query, document))
            assert got == expected, (
                f"{engine} on {query!r} after mutation (seed {seed}): "
                f"{got} != reparse reference {expected}"
            )


@pytest.mark.parametrize("seed,with_namespaces", CASES[:3])
def test_streaming_matches_mutated_tree(seed, with_namespaces):
    document, _ = _mutated_pair(seed, with_namespaces)
    source = serialize(document)
    for query in QUERIES:
        if not api.classify_query(query).streamable:
            continue
        streamed = [match.order for match in stream_select(query, source)]
        tree = [n.order for n in api.get_engine("topdown").select(query, document)]
        assert streamed == tree, (query, seed)


@pytest.mark.parametrize("seed,with_namespaces", CASES[:3])
def test_scalar_queries_match_reparse_after_mutation(seed, with_namespaces):
    document, reparsed = _mutated_pair(seed, with_namespaces)
    for query in ("count(//a)", "count(//*)", "string(/)", "count(//@*)"):
        expected = api.evaluate(query, reparsed)
        for engine in _engines_for(query):
            assert api.evaluate(query, document, engine=engine) == expected, (
                engine,
                query,
                seed,
            )


# ----------------------------------------------------------------------
# Snapshot isolation under concurrent mutation
# ----------------------------------------------------------------------
STRESS_QUERY = "//a/descendant-or-self::node()"
STRESS_ROUNDS = 6


def _make_stress_documents():
    documents = []
    for seed in (5, 18, 19):
        document = random_document(seed, max_depth=4, max_children=4)
        document.index
        documents.append(document)
    return documents


def test_backends_agree_between_edit_rounds():
    """With mutation quiesced, serial, thread and process batches over the
    same edited state are node-for-node identical, round after round."""
    documents = _make_stress_documents()
    session = XPathSession()
    collection = session.collection(documents)
    rng = random.Random(99)
    with ParallelExecutor(backend="thread", max_workers=2) as thread_pool:
        with ParallelExecutor(backend="process", max_workers=2) as process_pool:
            for round_number in range(STRESS_ROUNDS):
                serial = [
                    _fingerprint(result.nodes)
                    for result in collection.select(STRESS_QUERY)
                ]
                for pool in (thread_pool, process_pool):
                    got = [
                        _fingerprint(result.nodes)
                        for result in collection.select(STRESS_QUERY, parallel=pool)
                    ]
                    assert got == serial, (pool.backend, round_number)
                for document in documents:
                    random_edit_script(document, 2, seed=rng.randrange(1 << 30))


def test_mutation_during_batch_yields_no_torn_reads():
    """Writers edit continuously while batches run on every backend.

    Each batch pins one snapshot generation per document before evaluating;
    the pinned view is frozen (the writer copies on its next edit), so
    re-evaluating the query against the very documents the result nodes
    belong to must reproduce the result exactly.  A torn read — an answer
    mixing two generations, or computed mid-edit — cannot satisfy that.
    """
    documents = _make_stress_documents()
    session = XPathSession()
    collection = session.collection(documents)
    stop = threading.Event()
    failures: list[BaseException] = []

    def mutate(worker_seed: int) -> None:
        rng = random.Random(worker_seed)
        while not stop.is_set():
            target = documents[rng.randrange(len(documents))]
            try:
                random_edit_script(target, 1, seed=rng.randrange(1 << 30))
            except BaseException as error:  # pragma: no cover - fail loudly
                failures.append(error)
                return

    writers = [threading.Thread(target=mutate, args=(seed,)) for seed in (1, 2)]
    for writer in writers:
        writer.start()
    try:
        with ParallelExecutor(backend="thread", max_workers=2) as thread_pool:
            with ParallelExecutor(backend="process", max_workers=2) as process_pool:
                for _ in range(STRESS_ROUNDS):
                    for pool in (None, thread_pool, process_pool):
                        batch = list(
                            collection.select(STRESS_QUERY, parallel=pool)
                        )
                        assert len(batch) == len(documents)
                        for result in batch:
                            assert result.ok, result.error
                            assert result.document is documents[result.index]
                            if not result.nodes:
                                continue
                            view = result.nodes[0].document
                            # Every result node maps into one pinned view...
                            assert all(
                                node.document is view for node in result.nodes
                            )
                            # ...whose frozen tree reproduces the answer.
                            replay = api.get_engine("topdown").select(
                                STRESS_QUERY, view
                            )
                            assert _fingerprint(result.nodes) == _fingerprint(
                                replay
                            ), "torn read: result does not match its own pinned view"
    finally:
        stop.set()
        for writer in writers:
            writer.join(timeout=10)
    assert not failures, failures
