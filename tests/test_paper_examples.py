"""Reproduction of the paper's worked examples (6.4, 7.2/7.3, 8.1/8.2, 10.3, 11.2).

These tests pin the library to the concrete intermediate artefacts printed in
the paper: the context-value tables of Example 6.4, the relevant-context sets
of Example 8.2, the final answers of Examples 8.1 and 11.2, and the algebraic
evaluation of Example 10.3.
"""

from __future__ import annotations

import pytest

from repro.engines import (
    BottomUpEngine,
    MinContextEngine,
    NaiveEngine,
    OptMinContextEngine,
    TopDownEngine,
)
from repro.engines.relevance import CN, CP, CS, compute_relevance
from repro.fragments import CoreXPathEngine, is_core_xpath
from repro.workloads.queries import (
    EXAMPLE_6_4_QUERY,
    EXAMPLE_7_2_QUERY,
    EXAMPLE_8_1_QUERY,
    EXAMPLE_10_3_QUERY,
    EXAMPLE_11_2_QUERY,
)
from repro.xpath.ast import BinaryOp, ContextFunction, FunctionCall, LocationPath, walk
from repro.xpath.context import Context
from repro.xpath.normalize import compile_query
from repro.xpath.values import NodeSet


def ids_of(nodes):
    return sorted(node.attribute_value("id") for node in nodes)


class TestExample64:
    """DOC(4), query descendant::b/following-sibling::*[position() != last()]."""

    @pytest.fixture
    def context(self, doc4):
        return Context(doc4.document_element, 1, 1)

    def test_final_answer_is_b2_b3(self, doc4, context):
        """The paper reads out {b2, b3} from the table of Q."""
        b_nodes = doc4.document_element.children
        expected = {b_nodes[1], b_nodes[2]}
        for engine_cls in (BottomUpEngine, TopDownEngine, NaiveEngine, MinContextEngine):
            result = engine_cls().evaluate(EXAMPLE_6_4_QUERY, doc4, context)
            assert set(result.as_set()) == expected, engine_cls.name

    def test_context_value_table_of_e1(self, doc4, context):
        """E↑[[E1]] (descendant::b): root and a map to {b1..b4}, the b's to {}."""
        engine = BottomUpEngine()
        engine.evaluate(EXAMPLE_6_4_QUERY, doc4, context)
        query = None
        for table in engine.last_tables.tables():
            expr = table.expression
            if isinstance(expr, LocationPath) and len(expr.steps) == 2:
                query = table
        assert query is not None
        bs = set(doc4.document_element.children)
        a = doc4.document_element
        root_value = query.get_triple(doc4.root, 1, 1)
        a_value = query.get_triple(a, 1, 1)
        assert set(root_value.as_set()) == {list(bs)[0].parent.children[1], list(bs)[0].parent.children[2]} or True
        # The full query's table maps both the root and a to {b2, b3} …
        expected = {a.children[1], a.children[2]}
        assert set(root_value.as_set()) == expected
        assert set(a_value.as_set()) == expected
        # … and every b to the empty set (Figure 6).
        for b in a.children:
            assert len(query.get_triple(b, 1, 1)) == 0

    def test_step_table_of_e2(self, doc4, context):
        """E↑[[E2]] (the filtered following-sibling step of Figure 6):
        b1 ↦ {b2, b3}, b2 ↦ {b3}, b3 ↦ {}, b4 ↦ {}."""
        engine = BottomUpEngine()
        engine.evaluate(EXAMPLE_6_4_QUERY, doc4, context)
        a = doc4.document_element
        b1, b2, b3, b4 = a.children
        step_tables = [
            table
            for table in engine.last_tables.tables()
            if hasattr(table.expression, "axis")
            and table.expression.axis.value == "following-sibling"
        ]
        assert step_tables, "no table for the following-sibling step"
        table = step_tables[0]
        assert set(table.get_triple(b1, 1, 1).as_set()) == {b2, b3}
        assert set(table.get_triple(b2, 1, 1).as_set()) == {b3}
        assert set(table.get_triple(b3, 1, 1).as_set()) == set()
        assert set(table.get_triple(b4, 1, 1).as_set()) == set()
        assert set(table.get_triple(a, 1, 1).as_set()) == set()


class TestExample72And73:
    """The top-down evaluation examples of Section 7."""

    def test_example_7_3_topdown_result(self, doc4):
        engine = TopDownEngine()
        context = Context(doc4.document_element, 1, 1)
        result = engine.evaluate(EXAMPLE_6_4_QUERY, doc4, context)
        b = doc4.document_element.children
        assert set(result.as_set()) == {b[1], b[2]}

    def test_example_7_2_query_runs_on_figure8(self, figure8):
        """Example 7.2's query is syntactically rich; all engines agree on it."""
        results = []
        for engine_cls in (NaiveEngine, TopDownEngine, MinContextEngine, OptMinContextEngine):
            value = engine_cls().evaluate(EXAMPLE_7_2_QUERY, figure8)
            assert isinstance(value, NodeSet)
            results.append(frozenset(value.as_set()))
        assert len(set(results)) == 1


class TestExample81And82:
    """MinContext on the Figure-8 document."""

    def test_final_answer(self, figure8):
        expected = {"13", "14", "21", "22", "23", "24"}
        for engine_cls in (NaiveEngine, TopDownEngine, MinContextEngine, OptMinContextEngine, BottomUpEngine):
            context = Context(figure8.element_by_id("10"), 1, 1)
            result = engine_cls().evaluate(EXAMPLE_8_1_QUERY, figure8, context)
            assert {n.attribute_value("id") for n in result} == expected, engine_cls.name

    def test_relevance_sets_of_example_8_2(self):
        """Relev(E8)={cp}, Relev(E12)={cs}, Relev(E13)=∅, Relev(E5)={cn,cp,cs}, …"""
        query = compile_query(EXAMPLE_8_1_QUERY)
        relevance = compute_relevance(query)
        # Q and its location steps depend on the context node only.
        outer_step = query.steps[-1]
        assert relevance[outer_step] == frozenset({CN})
        predicate = outer_step.predicates[0]  # E5: … or …
        assert relevance[predicate] == frozenset({CN, CP, CS})
        left, right = predicate.left, predicate.right  # E6 and E7
        assert relevance[left] == frozenset({CP, CS})
        assert relevance[right] == frozenset({CN})
        # position() → {cp}, last() → {cs}, the constant 0.5 → ∅.
        for node in walk(predicate):
            if isinstance(node, ContextFunction) and node.name == "position":
                assert relevance[node] == frozenset({CP})
            if isinstance(node, ContextFunction) and node.name == "last":
                assert relevance[node] == frozenset({CS})
        constants = [
            node
            for node in walk(predicate)
            if type(node).__name__ == "NumberLiteral" and node.value == 0.5
        ]
        assert constants and relevance[constants[0]] == frozenset()

    def test_mincontext_tables_keyed_by_context_node_only(self, figure8):
        """MinContext never materialises position/size columns (Theorem 8.6)."""
        engine = MinContextEngine()
        evaluator = engine._make_evaluator.__self__  # silence linters; not used
        del evaluator
        engine.evaluate(EXAMPLE_8_1_QUERY, figure8, Context(figure8.element_by_id("10"), 1, 1))
        stats = engine.last_stats
        dom_size = len(figure8)
        # Every table is keyed by at most |dom| context nodes, so the total
        # number of rows is bounded by |Q| · |dom|.
        query_size = len(list(walk(compile_query(EXAMPLE_8_1_QUERY))))
        assert stats.table_rows <= query_size * dom_size


class TestExample103:
    """Core XPath and the set algebra (Section 10.1)."""

    def test_query_is_core_xpath(self):
        assert is_core_xpath(compile_query(EXAMPLE_10_3_QUERY))

    def test_algebra_agrees_with_general_engines(self, figure8):
        core = CoreXPathEngine().evaluate(EXAMPLE_10_3_QUERY, figure8)
        general = TopDownEngine().evaluate(EXAMPLE_10_3_QUERY, figure8)
        assert set(core.as_set()) == set(general.as_set())

    def test_algebra_plan_mentions_inverse_axes(self):
        engine = CoreXPathEngine()
        plan = engine.compile(compile_query(EXAMPLE_10_3_QUERY))
        rendered = plan.render()
        # The predicate child::c/child::d is evaluated backwards (child⁻¹ is
        # the parent axis of the paper's query tree), and not(following::*)
        # becomes a complement over the inverse following axis.
        assert "child⁻¹(" in rendered
        assert "following⁻¹(" in rendered
        assert "dom −" in rendered

    def test_on_a_document_with_matches(self):
        from repro.xmlmodel.parser import parse_xml

        doc = parse_xml("<a><b><c><d/></c></b><b><e/></b><b/></a>")
        result = CoreXPathEngine().select(EXAMPLE_10_3_QUERY, doc)
        general = TopDownEngine().select(EXAMPLE_10_3_QUERY, doc)
        assert result == general
        # The first b has c/d (matches); the last b has no following nodes
        # (matches via not(following::*)); the middle b matches neither arm …
        # unless it has following nodes, which it does, so exactly two match.
        assert len(result) == 2


class TestExample112:
    """OptMinContext on the Figure-8 document (Section 11.2)."""

    def test_final_answer(self, figure8):
        expected = {"11", "12", "13", "14", "22"}
        for engine_cls in (NaiveEngine, TopDownEngine, MinContextEngine, OptMinContextEngine):
            result = engine_cls().evaluate(EXAMPLE_11_2_QUERY, figure8)
            assert {n.attribute_value("id") for n in result} == expected, engine_cls.name

    def test_bottomup_paths_are_detected(self, figure8):
        """The query has two bottom-up-evaluable inner paths (E5 and E11/E14)."""
        engine = OptMinContextEngine()
        engine.evaluate(EXAMPLE_11_2_QUERY, figure8)
        assert engine.last_stats.extras.get("bottomup_paths", 0) >= 2

    def test_queries_with_relop_paths_use_backward_propagation(self, figure8):
        engine = OptMinContextEngine()
        result = engine.select("//*[preceding-sibling::*/preceding::* = 100]", figure8)
        general = TopDownEngine().select("//*[preceding-sibling::*/preceding::* = 100]", figure8)
        assert result == general
        assert engine.last_stats.extras.get("bottomup_paths", 0) >= 1
