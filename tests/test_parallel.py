"""The concurrency / parallel-execution test offensive (ISSUE 4).

Three fronts:

* **serial ≡ parallel** — every batch entry point must produce results
  identical to the serial path (order, content, per-document failures)
  through both the thread and the process backend;
* **thread-safety under stress** — N client threads hammering one
  :class:`XPathSession` (mixed cached/uncached queries, one shared plan
  cache) must produce correct results and exactly consistent
  ``SessionStats`` / ``PlanCacheStats`` counters;
* **limits under parallelism** — an operation-budget or wall-clock breach
  in one worker fails only its document: sibling workers, the merged
  :class:`BatchRun` and the session aggregates stay exact.
"""

from __future__ import annotations

import threading

import pytest

from repro import api
from repro.collection import BatchRun
from repro.engines.base import EvalLimits
from repro.errors import (
    ResourceLimitExceeded,
    VariableBindingError,
    XPathEvaluationError,
)
from repro.parallel import (
    ParallelExecutor,
    default_max_workers,
    parallel_by_default,
    resolve_executor,
)
from repro.plan import PlanCache
from repro.session import XPathSession
from repro.workloads.documents import doc_deep, doc_figure8, doc_flat, doc_idref
from repro.xpath.values import NodeSet

BACKENDS = ("thread", "process")

SOURCES = [
    "<a><b/><b/></a>",
    "<a/>",
    "<a><b>c</b><c/><b>c</b><b/></a>",
    "<a x='1'><b y='2'>t</b><!--note--></a>",
    "<a><a><a><b/></a></a></a>",
]


def _shape(batch: BatchRun):
    """A comparable fingerprint of a batch: per-document orders/value/error."""
    shape = []
    for result in batch:
        if not result.ok:
            shape.append(("error", type(result.error).__name__))
        elif result.nodes is not None:
            shape.append(("nodes", tuple(node.order for node in result.nodes)))
        elif isinstance(result.value, NodeSet):
            shape.append(
                ("nodeset", tuple(node.order for node in result.value))
            )
        else:
            shape.append(("value", result.value))
    return shape


@pytest.fixture(scope="module", params=BACKENDS)
def executor(request):
    with ParallelExecutor(backend=request.param, max_workers=2) as ex:
        yield ex


# ----------------------------------------------------------------------
# Serial ≡ parallel over the batch entry points
# ----------------------------------------------------------------------
class TestSerialParallelEquivalence:
    QUERIES = [
        "//b",
        "/descendant::*",
        "count(//b)",
        "string(/a)",
        "//b[. = 'c']",
        "//a[descendant::b]/child::node()",
        "//b[$missing]",          # fails exactly where b-nodes exist
        "count(//b) > 1",
    ]

    @pytest.fixture(scope="class")
    def collection(self):
        return XPathSession().parse_collection(SOURCES)

    def test_select_matches_serial(self, collection, executor):
        for query in self.QUERIES[:6]:
            serial = collection.select(query)
            parallel = collection.select(query, parallel=executor)
            assert _shape(parallel) == _shape(serial), (executor.backend, query)
            assert [r.name for r in parallel] == [r.name for r in serial]

    def test_evaluate_matches_serial(self, collection, executor):
        for query in self.QUERIES:
            serial = collection.evaluate(query)
            parallel = collection.evaluate(query, parallel=executor)
            assert _shape(parallel) == _shape(serial), (executor.backend, query)

    def test_select_many_matches_serial(self, collection, executor):
        serial = collection.select_many(self.QUERIES[:6])
        parallel = collection.select_many(self.QUERIES[:6], parallel=executor)
        assert [_shape(run) for run in parallel] == [_shape(run) for run in serial]
        assert [r.query for r in parallel.plan_reports] == [
            r.query for r in serial.plan_reports
        ]

    def test_parallel_nodes_are_the_callers_nodes(self, collection, executor):
        """Process workers return node *orders*; the merged results must
        reference the parent's node objects, never worker copies."""
        for serial_result, parallel_result in zip(
            collection.select("//b"), collection.select("//b", parallel=executor)
        ):
            for a, b in zip(serial_result.nodes, parallel_result.nodes):
                assert a is b

    def test_error_isolation_matches_serial(self, collection, executor):
        serial = collection.select("//b[$missing]")
        parallel = collection.select("//b[$missing]", parallel=executor)
        assert _shape(parallel) == _shape(serial)
        assert any(not r.ok for r in parallel) and any(r.ok for r in parallel)
        for result in parallel:
            if not result.ok:
                assert isinstance(result.error, VariableBindingError)
                assert result.error.name == "missing"
                assert result.nodes is None

    def test_all_engines_agree_with_serial(self, executor):
        collection = XPathSession().collection(
            [doc_flat(4), doc_figure8(), doc_deep(3), doc_idref()]
        )
        for engine in sorted(api.ENGINE_CLASSES):
            serial = collection.select("//b", engine=engine)
            parallel = collection.select("//b", engine=engine, parallel=executor)
            assert _shape(parallel) == _shape(serial), (executor.backend, engine)

    def test_session_stats_match_serial_accounting(self, executor):
        serial_session = XPathSession()
        parallel_session = XPathSession()
        for session, parallel in (
            (serial_session, False),
            (parallel_session, executor),
        ):
            docs = session.parse_collection(SOURCES)
            docs.select("//b", parallel=parallel)
            docs.select("//b[$missing]", parallel=parallel)
        serial, parallel = serial_session.stats, parallel_session.stats
        assert parallel.queries == serial.queries == 2 * len(SOURCES)
        assert parallel.errors == serial.errors
        assert parallel.limit_breaches == serial.limit_breaches
        assert parallel.total_work == serial.total_work
        assert parallel.engine_use == serial.engine_use

    def test_empty_collection(self, executor):
        docs = XPathSession().parse_collection([])
        batch = docs.select("//b", parallel=executor)
        assert list(batch) == []
        assert batch.backend == executor.backend

    def test_batch_run_reports_parallel_provenance(self, collection, executor):
        batch = collection.select("//b", parallel=executor)
        assert batch.backend == executor.backend
        assert batch.workers == 2
        # parallel=False forces serial even under REPRO_PARALLEL_DEFAULT=1.
        serial = collection.select("//b", parallel=False)
        assert serial.backend is None and serial.workers is None


# ----------------------------------------------------------------------
# Thread-safety stress: one session, many client threads
# ----------------------------------------------------------------------
class TestSessionStress:
    THREADS = 8
    ITERATIONS = 25

    def test_threads_hammering_one_session(self):
        session = XPathSession()
        document = session.parse("<a><b>1</b><b>2</b><c><b>3</b></c></a>")
        shared = ["//b", "count(//b)", "/a/c/b", "string(//b[1])"]
        expected = {
            "//b": 3.0, "count(//b)": 3.0, "/a/c/b": 1.0, "string(//b[1])": "1",
        }
        failures: list = []
        barrier = threading.Barrier(self.THREADS)

        def hammer(worker: int) -> None:
            try:
                barrier.wait()
                for iteration in range(self.ITERATIONS):
                    for query in shared:
                        result = session.run(query, document)
                        count = (
                            float(len(result.value))
                            if isinstance(result.value, NodeSet)
                            else None
                        )
                        if count is not None and count != expected[query]:
                            raise AssertionError(f"{query}: {count}")
                    # A thread-unique query: always a compile, never a hit.
                    unique = f"//b[{worker * self.ITERATIONS + iteration + 1} > 0]"
                    nodes = session.select(unique, document)
                    if len(nodes) != 3:
                        raise AssertionError(f"{unique}: {len(nodes)}")
            except Exception as error:  # noqa: BLE001 - recorded for the assert
                failures.append(error)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures, failures
        total = self.THREADS * self.ITERATIONS * (len(shared) + 1)
        stats = session.stats
        assert stats.queries == total
        assert stats.errors == 0
        assert sum(stats.engine_use.values()) == total
        cache = session.cache.stats
        assert cache.lookups == total
        assert cache.hits + cache.misses == cache.lookups
        # Every unique query missed; the shared ones missed at most once
        # each per racing thread (losers of a compile race still count
        # their miss) and hit otherwise.
        unique_count = self.THREADS * self.ITERATIONS
        assert cache.misses >= unique_count + len(shared)
        assert cache.hits >= total - unique_count - len(shared) * self.THREADS

    def test_engine_instances_are_per_thread(self):
        session = XPathSession()
        seen = {}
        barrier = threading.Barrier(4)

        def grab(key: int) -> None:
            barrier.wait()
            seen[key] = session.engine("topdown")

        threads = [threading.Thread(target=grab, args=(k,)) for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        instances = list(seen.values())
        assert len({id(engine) for engine in instances}) == len(instances)
        # Within one thread the pool still returns the identical instance.
        assert session.engine("topdown") is session.engine("topdown")

    def test_plan_cache_concurrent_counters_are_exact(self):
        cache = PlanCache(maxsize=256)
        threads, per_thread = 8, 40
        barrier = threading.Barrier(threads)
        plans: list = []

        def hammer(worker: int) -> None:
            barrier.wait()
            local = []
            for i in range(per_thread):
                local.append(cache.get_or_compile("//a/b"))      # shared key
                cache.get_or_compile(f"//b[{worker}={worker}][{i}>0]")  # unique
            plans.extend(local)

        pool = [threading.Thread(target=hammer, args=(w,)) for w in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        stats = cache.stats
        assert stats.hits + stats.misses == stats.lookups == 2 * threads * per_thread
        # All hits on the shared key returned one identical plan object.
        assert len({id(plan) for plan in plans}) <= threads  # ≤ one racing compile each
        shared_plan = cache.get_or_compile("//a/b")
        assert plans.count(shared_plan) >= (threads - 1) * per_thread

    def test_default_session_stress_through_api(self):
        """The module-global default session (satellite 1): concurrent
        api.select traffic must neither raise nor corrupt the LRU."""
        document = api.parse("<a><b/><b/></a>")
        before = api.default_session().stats.queries
        errors: list = []
        barrier = threading.Barrier(6)

        def hammer(worker: int) -> None:
            try:
                barrier.wait()
                for i in range(20):
                    assert len(api.select("//b", document)) == 2
                    api.evaluate(f"count(//b[{worker + 1} + {i} > 0])", document)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        pool = [threading.Thread(target=hammer, args=(w,)) for w in range(6)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors, errors
        assert api.default_session().stats.queries == before + 6 * 40


# ----------------------------------------------------------------------
# EvalLimits under parallelism
# ----------------------------------------------------------------------
class TestLimitsUnderParallelism:
    @pytest.fixture(scope="class")
    def skewed(self):
        """One expensive document among cheap siblings."""
        return [doc_flat(2), doc_flat(400), doc_flat(3)]

    def test_op_budget_breach_is_isolated(self, skewed, executor):
        session = XPathSession()
        docs = session.collection(skewed)
        limits = EvalLimits(max_operations=200)
        serial = XPathSession().collection(skewed).select("//b", limits=limits)
        batch = docs.select("//b", limits=limits, parallel=executor)
        assert _shape(batch) == _shape(serial)
        assert [r.ok for r in batch] == [True, False, True]
        breach = batch[1].error
        assert isinstance(breach, ResourceLimitExceeded)
        assert breach.limit == "max_operations"
        # Partial stats survive the worker boundary and stay per-document.
        assert breach.stats is not None and breach.stats.total_work() > 200
        assert session.stats.queries == 3
        assert session.stats.errors == session.stats.limit_breaches == 1

    def test_timeout_breach_is_isolated(self, executor):
        # Exponential naive-engine work on the big document cannot finish
        # inside the budget; the tiny siblings finish in well under a
        # thousandth of it even on a loaded single-core machine.
        trap = "//b" + "/parent::a/b" * 8
        session = XPathSession()
        docs = session.collection([doc_flat(1), doc_flat(300), doc_flat(2)])
        batch = docs.select(
            trap,
            engine="naive",
            limits=EvalLimits(timeout_seconds=0.4),
            parallel=executor,
        )
        assert [r.ok for r in batch] == [True, False, True]
        assert isinstance(batch[1].error, ResourceLimitExceeded)
        assert batch[1].error.limit == "timeout_seconds"
        assert session.stats.limit_breaches == 1

    def test_breach_does_not_leak_into_sibling_results(self, skewed, executor):
        docs = XPathSession().collection(skewed)
        batch = docs.select(
            "//b", limits=EvalLimits(max_operations=200), parallel=executor
        )
        for result in (batch[0], batch[2]):
            assert result.ok and result.error is None
            assert [node.order for node in result.nodes] == [
                node.order
                for node in api.select("//b", result.document)
            ]

    def test_per_call_limits_override_session_limits(self, executor):
        session = XPathSession(limits=EvalLimits(max_operations=1))
        docs = session.parse_collection(["<a><b/></a>"])
        assert not docs.select("//b", parallel=executor).ok
        assert docs.select(
            "//b", limits=EvalLimits(max_operations=10_000), parallel=executor
        ).ok


# ----------------------------------------------------------------------
# Executor mechanics and the parallel= argument
# ----------------------------------------------------------------------
class TestExecutorMechanics:
    def test_chunks_cover_every_index_in_order(self):
        executor = ParallelExecutor(max_workers=3)
        for count in (1, 2, 3, 7, 100):
            chunks = executor._chunks(count)
            flat = [index for chunk in chunks for index in chunk]
            assert flat == list(range(count))
        assert ParallelExecutor(max_workers=3, chunk_size=2)._chunks(7) == [
            range(0, 2), range(2, 4), range(4, 6), range(6, 7),
        ]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelExecutor(backend="fibers")
        with pytest.raises(ValueError, match="max_workers"):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelExecutor(chunk_size=0)
        with pytest.raises(ValueError, match="require parallel"):
            XPathSession().parse_collection(["<a/>"]).select(
                "//b", parallel=False, max_workers=2
            )
        with pytest.raises(ValueError, match="not alongside"):
            resolve_executor(ParallelExecutor(), max_workers=2)

    def test_default_worker_count_is_positive(self):
        assert 1 <= default_max_workers() <= 4

    def test_ephemeral_true_builds_and_reports_a_pool(self):
        docs = XPathSession().parse_collection(SOURCES)
        batch = docs.select("//b", parallel=True, max_workers=2)
        assert batch.backend == "thread" and batch.workers == 2
        assert _shape(batch) == _shape(docs.select("//b"))

    def test_explicit_tuning_arguments_imply_parallel(self, monkeypatch):
        """max_workers/backend mean parallel regardless of the env default,
        so behaviour cannot flip between CI's parallel leg and production."""
        monkeypatch.delenv("REPRO_PARALLEL_DEFAULT", raising=False)
        docs = XPathSession().parse_collection(SOURCES)
        assert docs.select("//b", max_workers=2).backend == "thread"
        assert docs.select("//b", backend="thread").workers >= 1
        assert docs.select_many(["//b"], max_workers=2)[0].backend == "thread"

    def test_executor_reusable_after_close(self):
        executor = ParallelExecutor(max_workers=2)
        docs = XPathSession().parse_collection(SOURCES)
        first = docs.select("//b", parallel=executor)
        executor.close()
        second = docs.select("//b", parallel=executor)  # pool rebuilt lazily
        assert _shape(first) == _shape(second)
        executor.close()

    def test_process_backend_rejects_node_set_variables(self):
        session = XPathSession()
        docs = session.parse_collection(["<a><b/></a>"])
        nodes = NodeSet(api.select("//b", api.parse("<a><b/></a>")))
        with ParallelExecutor(backend="process", max_workers=2) as executor:
            with pytest.raises(XPathEvaluationError, match="node set"):
                docs.select("//b", variables={"v": nodes}, parallel=executor)

    def test_env_flips_batches_parallel_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_DEFAULT", "1")
        assert parallel_by_default()
        docs = XPathSession().parse_collection(SOURCES)
        batch = docs.select("//b")
        assert batch.backend == "thread"
        assert _shape(batch) == _shape(docs.select("//b", parallel=False))
        monkeypatch.setenv("REPRO_PARALLEL_DEFAULT", "0")
        assert not parallel_by_default()
        assert docs.select("//b").backend is None

    def test_compiled_plan_travels_to_process_workers(self, executor):
        """Plans without source text (built from ASTs) ship as pickles."""
        from repro.xpath.parser import parse_xpath

        ast = parse_xpath("//b")
        plan = api.compile_query(ast)
        assert plan.source is None
        docs = XPathSession().parse_collection(SOURCES)
        serial = docs.select(plan)
        parallel = docs.select(plan, parallel=executor)
        assert _shape(parallel) == _shape(serial)
