"""Compiled-plan pipeline and plan-cache behaviour.

Covers the tentpole of the plan layer: `CompiledQuery` captures the whole
front end once (parse → normalise → classify → engine selection), the LRU
`PlanCache` keyed by (query, engine, variable signature, library) behaves —
hit/miss counters, eviction at capacity, clear() — and the api/cli/engines
all consult it transparently.
"""

import pytest

from repro import api
from repro.engines.topdown import TopDownEngine
from repro.errors import XPathEvaluationError, XPathSyntaxError
from repro.fragments.classify import Fragment
from repro.plan import (
    CORE_LIBRARY_SIGNATURE,
    CompiledQuery,
    PlanCache,
    compile_plan,
    plan_cache_key,
    plan_for,
    referenced_variables,
)
from repro.xpath.normalize import compile_query as normalize_query
from repro.xpath.values import ValueType


@pytest.fixture
def doc():
    return api.parse("<a><b>1</b><b>2</b><c><b>3</b></c></a>")


@pytest.fixture(autouse=True)
def clean_default_cache():
    api.plan_cache().clear()
    yield
    api.plan_cache().clear()


class TestCompiledQuery:
    def test_pipeline_runs_once_and_is_reusable(self, doc):
        plan = compile_plan("//b", engine="auto")
        assert plan.source == "//b"
        assert plan.classification.fragment is Fragment.CORE_XPATH
        assert plan.requested_engine == "auto"
        assert plan.engine_name == "corexpath"
        first = plan.select(doc)
        second = plan.select(doc)
        assert [n.order for n in first] == [n.order for n in second]
        assert len(first) == 3

    def test_normalised_ast_is_shared_by_engines(self, doc):
        plan = compile_plan("//b[2]")
        # The numeric predicate was rewritten at compile time (Section 5).
        assert "position() = 2" in plan.to_xpath()
        for engine in api.engine_names():
            if engine in ("corexpath", "xpatterns"):
                continue  # positional predicates are outside the fragments
            nodes = api.get_engine(engine).select(plan, doc)
            assert [n.string_value() for n in nodes] == ["2"]

    def test_static_type_and_variables_exposed(self):
        plan = compile_plan("count(//b) + $offset")
        assert plan.static_type is ValueType.NUMBER
        assert plan.variable_names == frozenset({"offset"})

    def test_referenced_variables_walks_nested_expressions(self):
        expression = normalize_query("//a[$x + 1 > count(//b[$y])]/*[$x]")
        assert referenced_variables(expression) == frozenset({"x", "y"})

    def test_plan_accepts_prebuilt_ast(self, doc):
        from repro.xpath.parser import parse_xpath

        plan = compile_plan(parse_xpath("//b"))
        assert plan.source is None
        assert len(plan.select(doc)) == 3

    def test_relevance_precomputed_for_whole_tree(self):
        plan = compile_plan("//b[position() = last()]")
        assert plan.expression in plan.relevance
        sets = set(plan.relevance.values())
        assert frozenset({"cp"}) in sets or frozenset({"cp", "cs"}) in sets

    def test_algebra_plan_memoised_per_compiler(self):
        from repro.fragments.core_xpath import CoreXPathCompiler

        plan = compile_plan("/descendant::b", engine="corexpath")
        first = plan.algebra_plan(CoreXPathCompiler)
        assert plan.algebra_plan(CoreXPathCompiler) is first

    def test_retarget_preserves_ast_and_classification(self):
        plan = compile_plan("//b", engine="topdown")
        retargeted = plan_for(plan, engine="bottomup", cache=None)
        assert retargeted.engine_name == "bottomup"
        assert retargeted.expression is plan.expression
        assert retargeted.classification is plan.classification

    def test_plan_passthrough_for_matching_engines(self):
        plan = compile_plan("//b", engine="auto")
        assert plan_for(plan, engine="auto") is plan
        # The resolved engine also counts as a match: no spurious copies.
        assert plan_for(plan, engine=plan.engine_name) is plan
        # No engine preference at all: the plan stands exactly as compiled.
        assert plan_for(plan) is plan
        assert compile_plan(plan) is plan

    def test_api_uses_prebuilt_plan_as_is(self, doc):
        # Regression: api.select used to retarget an auto-resolved plan to
        # the default engine when the caller omitted the engine kwarg.
        plan = api.compile_query("/descendant::b", engine="auto")
        assert plan.engine_name == "corexpath"
        api.select(plan, doc)
        # The fragment engine ran: its algebra plan was memoised on *this*
        # plan object, which only happens when the plan is used as-is.
        assert len(plan._algebra_plans) == 1
        # An explicit engine still overrides — without mutating the plan.
        nodes = api.select(plan, doc, engine="naive")
        assert [n.order for n in nodes] == [n.order for n in plan.select(doc)]
        assert plan.engine_name == "corexpath"
        retargeted = plan_for(plan, engine="naive")
        assert retargeted is not plan and retargeted.engine_name == "naive"

    def test_engine_evaluate_accepts_plan(self, doc):
        plan = compile_plan("count(//b)")
        assert TopDownEngine().evaluate(plan, doc) == 3.0

    def test_unknown_query_type_rejected(self):
        with pytest.raises(XPathEvaluationError):
            plan_for(12345)  # type: ignore[arg-type]

    def test_syntax_errors_surface_at_compile_time(self):
        with pytest.raises(XPathSyntaxError):
            compile_plan("//b[")


class TestPlanCacheBehaviour:
    def test_hit_and_miss_counters(self):
        cache = PlanCache(maxsize=4)
        first = cache.get_or_compile("//a")
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        second = cache.get_or_compile("//a")
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert second is first  # the identical immutable plan object
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_at_capacity(self):
        cache = PlanCache(maxsize=2)
        cache.get_or_compile("//a")
        cache.get_or_compile("//b")
        cache.get_or_compile("//a")  # refresh //a: //b is now least recent
        cache.get_or_compile("//c")  # evicts //b
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        key_a = plan_cache_key("//a", "topdown", frozenset())
        key_b = plan_cache_key("//b", "topdown", frozenset())
        key_c = plan_cache_key("//c", "topdown", frozenset())
        assert key_a in cache and key_c in cache
        assert key_b not in cache

    def test_eviction_order_is_least_recently_used(self):
        cache = PlanCache(maxsize=3)
        for query in ("//a", "//b", "//c"):
            cache.get_or_compile(query)
        cache.get_or_compile("//a")  # hit: //b is the LRU entry now
        cache.get_or_compile("//d")
        assert plan_cache_key("//b", "topdown", frozenset()) not in cache
        assert plan_cache_key("//a", "topdown", frozenset()) in cache

    def test_key_distinguishes_engine_name(self):
        cache = PlanCache()
        topdown = cache.get_or_compile("//a", engine="topdown")
        bottomup = cache.get_or_compile("//a", engine="bottomup")
        assert cache.stats.misses == 2
        assert topdown is not bottomup
        assert topdown.engine_name == "topdown"
        assert bottomup.engine_name == "bottomup"

    def test_key_distinguishes_variable_signatures(self):
        cache = PlanCache()
        bare = cache.get_or_compile("//a[$n]")
        bound = cache.get_or_compile("//a[$n]", variables={"n": 1.0})
        also_bound = cache.get_or_compile("//a[$n]", variables={"n": 2.0})
        assert cache.stats.misses == 2  # names key the cache, values do not
        assert cache.stats.hits == 1
        assert bare is not bound
        assert bound is also_bound

    def test_key_distinguishes_library_signature(self):
        cache = PlanCache()
        cache.get_or_compile("//a")
        cache.get_or_compile("//a", library_signature="ext/999")
        assert cache.stats.misses == 2
        assert CORE_LIBRARY_SIGNATURE != "ext/999"

    def test_clear_empties_cache_and_resets_counters(self):
        cache = PlanCache(maxsize=2)
        cache.get_or_compile("//a")
        cache.get_or_compile("//a")
        cache.get_or_compile("//b")
        cache.get_or_compile("//c")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.as_dict() == {"hits": 0, "misses": 0, "evictions": 0}

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_peek_does_not_touch_stats_or_order(self):
        cache = PlanCache(maxsize=2)
        plan = cache.get_or_compile("//a")
        key = plan_cache_key("//a", "topdown", frozenset())
        assert cache.peek(key) is plan
        assert cache.stats.hits == 0
        assert cache.peek(plan_cache_key("//zzz", "topdown", frozenset())) is None

    def test_cached_plan_key_roundtrip(self):
        cache = PlanCache()
        plan = cache.get_or_compile("//a", engine="auto")
        assert cache.peek(plan.cache_key()) is plan


class TestTransparentCaching:
    def test_api_select_consults_default_cache(self, doc):
        cache = api.plan_cache()
        api.select("//b", doc)
        api.select("//b", doc)
        assert cache.stats.hits >= 1
        assert cache.stats.misses >= 1

    def test_api_evaluate_and_select_share_entries(self, doc):
        cache = api.plan_cache()
        api.evaluate("count(//b)", doc)
        api.evaluate("count(//b)", doc)
        assert cache.stats.hits == 1

    def test_engine_string_front_door_consults_cache(self, doc):
        cache = api.plan_cache()
        engine = TopDownEngine()
        engine.select("//b", doc)
        engine.select("//b", doc)
        assert cache.stats.hits == 1

    def test_cli_consults_cache(self):
        from repro import cli

        cache = api.plan_cache()
        assert cli.run(["//b"], stdin="<a><b/></a>") == 0
        assert cli.run(["//b"], stdin="<a><b/></a>") == 0
        assert cache.stats.hits >= 1

    def test_cached_results_equal_uncached(self, doc):
        cold = plan_for("//b[position() = last()]", cache=None)
        api.plan_cache().clear()
        warm_miss = api.select("//b[position() = last()]", doc)
        warm_hit = api.select("//b[position() = last()]", doc)
        uncached = cold.select(doc)
        assert [n.order for n in warm_miss] == [n.order for n in warm_hit]
        assert [n.order for n in warm_miss] == [n.order for n in uncached]
