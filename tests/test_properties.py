"""Property-based tests (hypothesis) on core data structures and invariants.

Three families of properties:

* **Axis algebra** — Algorithm 3.2 (the regular-expression evaluator of
  Table I) agrees with the direct axis functions on random documents; axes
  and their inverses satisfy Lemma 10.1; the partition property of the
  XPath axes (self/ancestor/descendant/preceding/following partition dom).
* **Value conversions** — number/string/boolean conversions are total and
  idempotent where the spec says they are.
* **Engine agreement** — the naive and the top-down engines (plus the Core
  XPath algebra where applicable) agree on randomly generated queries over
  randomly generated documents.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.axes.algorithm32 import eval_axis
from repro.axes.functions import axis_nodes, axis_set
from repro.axes.regex import Axis, inverse_axis
from repro.engines import NaiveEngine, TopDownEngine
from repro.fragments import CoreXPathEngine, is_core_xpath
from repro.workloads.documents import random_document
from repro.xpath.normalize import compile_query
from repro.xpath.values import NodeSet, format_number, to_boolean, to_number, to_string

NAVIGATION_AXES = [
    Axis.SELF,
    Axis.CHILD,
    Axis.PARENT,
    Axis.DESCENDANT,
    Axis.ANCESTOR,
    Axis.DESCENDANT_OR_SELF,
    Axis.ANCESTOR_OR_SELF,
    Axis.FOLLOWING,
    Axis.PRECEDING,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
]

documents = st.builds(
    random_document,
    seed=st.integers(min_value=0, max_value=10_000),
    max_depth=st.integers(min_value=1, max_value=4),
    max_children=st.integers(min_value=1, max_value=4),
)


# ----------------------------------------------------------------------
# Axis properties
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(documents, st.sampled_from(NAVIGATION_AXES))
def test_algorithm32_agrees_with_direct_axes(document, axis):
    for node in document.dom:
        if node.is_special_child:
            continue
        via_regex = {n for n in eval_axis({node}, axis) if not n.is_special_child}
        via_direct = set(axis_nodes(node, axis))
        assert via_regex == via_direct


@settings(max_examples=30, deadline=None)
@given(documents, st.sampled_from(NAVIGATION_AXES))
def test_lemma_10_1_inverse_axes(document, axis):
    inverse = inverse_axis(axis)
    nodes = [n for n in document.dom if not n.is_special_child]
    for x in nodes:
        for y in axis_nodes(x, axis):
            assert x in set(axis_nodes(y, inverse))


@settings(max_examples=30, deadline=None)
@given(documents)
def test_axis_partition_property(document):
    """self ∪ ancestor ∪ descendant ∪ preceding ∪ following = all non-special
    nodes, and the five sets are pairwise disjoint (a classic XPath invariant)."""
    regular = {n for n in document.dom if not n.is_special_child}
    for node in regular:
        parts = [
            set(axis_nodes(node, Axis.SELF)),
            set(axis_nodes(node, Axis.ANCESTOR)),
            set(axis_nodes(node, Axis.DESCENDANT)),
            set(axis_nodes(node, Axis.PRECEDING)),
            set(axis_nodes(node, Axis.FOLLOWING)),
        ]
        union: set = set()
        total = 0
        for part in parts:
            union |= part
            total += len(part)
        assert union == regular
        assert total == len(regular)  # pairwise disjoint


@settings(max_examples=30, deadline=None)
@given(documents, st.sampled_from(NAVIGATION_AXES), st.integers(min_value=0, max_value=10_000))
def test_axis_set_is_union_of_pointwise_application(document, axis, seed):
    import random

    rng = random.Random(seed)
    candidates = [n for n in document.dom if not n.is_special_child]
    sample = [n for n in candidates if rng.random() < 0.4]
    expected: set = set()
    for node in sample:
        expected.update(axis_nodes(node, axis))
    assert axis_set(document, sample, axis) == expected


@settings(max_examples=30, deadline=None)
@given(documents)
def test_document_order_is_a_total_order_compatible_with_descendants(document):
    for node in document.dom:
        for descendant in node.iter_descendants():
            assert node.order < descendant.order


# ----------------------------------------------------------------------
# Value conversions
# ----------------------------------------------------------------------
finite_numbers = st.floats(allow_nan=False, allow_infinity=False, width=32)


@settings(max_examples=100, deadline=None)
@given(finite_numbers)
def test_number_string_roundtrip(value):
    """number(string(v)) == v for finite numbers (XPath round-trip property)."""
    assert to_number(to_string(float(value))) == float(value)


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=30))
def test_to_number_is_total_on_strings(text):
    result = to_number(text)
    assert isinstance(result, float)  # either a parse or NaN, never an exception


@settings(max_examples=100, deadline=None)
@given(st.one_of(finite_numbers, st.text(max_size=10), st.booleans()))
def test_to_boolean_total_and_boolean_idempotent(value):
    result = to_boolean(value if not isinstance(value, float) else float(value))
    assert isinstance(result, bool)
    assert to_boolean(result) == result


@settings(max_examples=50, deadline=None)
@given(finite_numbers)
def test_format_number_never_uses_exponent(value):
    rendered = format_number(float(value))
    assert "e" not in rendered and "E" not in rendered


def test_nan_conversions():
    assert to_string(math.nan) == "NaN"
    assert to_boolean(math.nan) is False
    assert math.isnan(to_number("not a number"))


# ----------------------------------------------------------------------
# Random-query engine agreement
# ----------------------------------------------------------------------
_AXES_FOR_QUERIES = [
    "child",
    "descendant",
    "parent",
    "ancestor",
    "following-sibling",
    "preceding-sibling",
    "following",
    "preceding",
    "descendant-or-self",
    "self",
]
_TAGS = ["a", "b", "c", "*"]


@st.composite
def random_steps(draw, max_steps=3, allow_predicates=True):
    count = draw(st.integers(min_value=1, max_value=max_steps))
    steps = []
    for _ in range(count):
        axis = draw(st.sampled_from(_AXES_FOR_QUERIES))
        tag = draw(st.sampled_from(_TAGS))
        step = f"{axis}::{tag}"
        if allow_predicates and draw(st.booleans()):
            predicate = draw(random_predicates())
            step += f"[{predicate}]"
        steps.append(step)
    return "/".join(steps)


@st.composite
def random_predicates(draw):
    kind = draw(st.integers(min_value=0, max_value=5))
    if kind == 0:
        return draw(random_steps(max_steps=2, allow_predicates=False))
    if kind == 1:
        return f"position() = {draw(st.integers(min_value=1, max_value=3))}"
    if kind == 2:
        return "position() != last()"
    if kind == 3:
        return f"count({draw(random_steps(max_steps=1, allow_predicates=False))}) > " f"{draw(st.integers(min_value=0, max_value=2))}"
    if kind == 4:
        return f"{draw(random_steps(max_steps=1, allow_predicates=False))} = '{draw(st.sampled_from(['0', '1', '42', 'x']))}'"
    return (
        f"{draw(random_steps(max_steps=1, allow_predicates=False))} or "
        f"not({draw(random_steps(max_steps=1, allow_predicates=False))})"
    )


@st.composite
def random_queries(draw):
    absolute = draw(st.booleans())
    body = draw(random_steps())
    prefix = "/" if absolute else ""
    if draw(st.booleans()):
        return f"count({prefix}{body})"
    return f"{prefix}{body}"


def _canonical(value):
    if isinstance(value, NodeSet):
        return frozenset(node.order for node in value)
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return value


@settings(max_examples=60, deadline=None)
@given(
    random_queries(),
    st.integers(min_value=0, max_value=500),
)
def test_naive_and_topdown_agree_on_random_queries(query, seed):
    document = random_document(seed, max_depth=3, max_children=3)
    naive_value = _canonical(NaiveEngine().evaluate(query, document))
    topdown_value = _canonical(TopDownEngine().evaluate(query, document))
    assert naive_value == topdown_value


@settings(max_examples=60, deadline=None)
@given(random_queries(), st.integers(min_value=0, max_value=500))
def test_core_xpath_engine_agrees_when_applicable(query, seed):
    expression = compile_query(query)
    if not is_core_xpath(expression):
        return
    document = random_document(seed, max_depth=3, max_children=3)
    algebra_value = _canonical(CoreXPathEngine().evaluate(query, document))
    reference_value = _canonical(TopDownEngine().evaluate(query, document))
    assert algebra_value == reference_value
