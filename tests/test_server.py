"""Tests for the async multi-tenant query service (repro.server).

Four fronts:

* **status mapping** — every documented HTTP status is reachable and
  distinct: 200 with provenance metadata, 400 for malformed requests and
  bad queries, 404 for unknown tenants/documents, 408 for deadline
  breaches, 422 for tenant work-budget breaches, 429 for queue overflow,
  503 while draining.  Queue overflow and limit breaches MUST be
  distinguishable (the acceptance bar of ISSUE 9);
* **parity** — a served ``/query`` response value is byte-identical
  (through :func:`~repro.server.canonical_json`) to
  :meth:`~repro.session.XPathSession.run` on the same stored document;
* **tenancy & admission** — tenants get isolated plan caches, limits and
  stats over one shared mapping; ``admit``/``release`` enforce the
  bounded queue; draining flips health and refuses new work;
* **HTTP shell** — real sockets: keep-alive, malformed JSON, unknown
  routes, concurrent clients, the SIGTERM-style drain path, and the
  ``/batch`` connection-close regression (a lazily forked process pool
  used to capture client sockets, so responses arrived but EOF never
  did).
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.api import build_store
from repro.engines.base import EvalLimits
from repro.server import (
    DEFAULT_TENANT,
    QueryServer,
    QueryService,
    RequestRejected,
    ServerConfig,
    TenantConfig,
    canonical_json,
    encode_value,
    load_tenants,
)
from repro.session import XPathSession
from repro.store import open_cached
from repro.xmlmodel.parser import parse_xml

DOC_SOURCES = [
    "<root><item>a</item><item>b</item></root>",
    "<root><item>c</item></root>",
    "<root>" + "<item>x</item>" * 5 + "</root>",
    "<root><empty/></root>",
]
DOC_NAMES = ["alpha", "beta", "gamma", "delta"]


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("server") / "corpus.reproxs"
    build_store(
        str(path),
        [parse_xml(source) for source in DOC_SOURCES],
        names=DOC_NAMES,
    )
    return str(path)


def make_config(store_path, **overrides):
    settings = {
        "store_path": store_path,
        "host": "127.0.0.1",
        "port": 0,
        "tenants": (
            TenantConfig(name="default", limits=EvalLimits()),
            TenantConfig(
                name="tiny", limits=EvalLimits(max_operations=5), cache_size=4
            ),
        ),
        "max_queue": 2,
        "max_concurrency": 1,
    }
    settings.update(overrides)
    return ServerConfig(**settings)


@pytest.fixture
def service(store_path):
    service = QueryService(make_config(store_path))
    yield service
    service.close()


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
class TestConfig:
    def test_default_tenant_injected_when_none_given(self, store_path):
        config = ServerConfig(store_path=store_path, tenants=())
        assert [t.name for t in config.tenants] == [DEFAULT_TENANT]

    def test_duplicate_tenant_names_rejected(self, store_path):
        tenants = (
            TenantConfig(name="a", limits=EvalLimits()),
            TenantConfig(name="a", limits=EvalLimits()),
        )
        with pytest.raises(ValueError, match="duplicate tenant"):
            ServerConfig(store_path=store_path, tenants=tenants)

    @pytest.mark.parametrize(
        "field, value",
        [("max_queue", -1), ("max_concurrency", 0), ("drain_grace", -0.5)],
    )
    def test_bounds_validated(self, store_path, field, value):
        with pytest.raises(ValueError):
            ServerConfig(store_path=store_path, **{field: value})

    def test_tenant_from_dict_rejects_unknown_limit(self):
        with pytest.raises(ValueError, match="unknown limit"):
            TenantConfig.from_dict(
                {"name": "x", "limits": {"max_wombats": 3}}
            )

    def test_load_tenants_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            json.dumps(
                {
                    "tenants": [
                        {"name": "a", "limits": {"max_operations": 7}},
                        {"name": "b", "cache_size": 2},
                    ]
                }
            )
        )
        tenants = load_tenants(str(path))
        assert [t.name for t in tenants] == ["a", "b"]
        assert tenants[0].limits.max_operations == 7
        assert tenants[1].cache_size == 2


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------
class TestEncoding:
    def test_scalars_pass_through(self):
        assert encode_value(2.0) == 2.0
        assert encode_value("text") == "text"
        assert encode_value(True) is True

    def test_nodeset_encodes_in_document_order(self, store_path):
        store = open_cached(store_path)
        session = XPathSession()
        result = session.run("//item", store.document_at(0))
        encoded = encode_value(result.value)
        assert [record["name"] for record in encoded] == ["item", "item"]
        assert encoded == sorted(encoded, key=lambda r: r["order"])
        assert all(record["type"] == "element" for record in encoded)

    def test_canonical_json_is_stable(self):
        a = canonical_json({"b": 1, "a": [2.0, "x"]})
        b = canonical_json({"a": [2.0, "x"], "b": 1})
        assert a == b
        assert b" " not in a


# ----------------------------------------------------------------------
# Status mapping + parity (no sockets)
# ----------------------------------------------------------------------
class TestServiceEndpoints:
    def test_query_ok_with_provenance(self, service):
        status, payload = service.execute({"query": "count(//item)"})
        assert status == 200
        assert payload["value"] == 2.0
        meta = payload["meta"]
        assert meta["tenant"] == "default"
        assert meta["doc"] == 0
        assert meta["cache_hit"] is False
        assert meta["engine"]
        assert meta["elapsed_ms"] >= 0.0
        # Same plan again: the tenant cache answers.
        status, payload = service.execute({"query": "count(//item)"})
        assert payload["meta"]["cache_hit"] is True

    def test_response_value_byte_identical_to_session_run(
        self, service, store_path
    ):
        query = "//item[position() < 3]"
        status, payload = service.execute({"query": query, "doc": 2})
        assert status == 200
        store = open_cached(store_path)
        direct = XPathSession().run(query, store.document_at(2))
        assert canonical_json(payload["value"]) == canonical_json(
            encode_value(direct.value)
        )

    def test_document_by_name(self, service):
        status, payload = service.execute(
            {"query": "count(//item)", "doc": "gamma"}
        )
        assert status == 200
        assert payload["value"] == 5.0
        assert payload["meta"]["doc"] == 2

    def test_unknown_tenant_404(self, service):
        status, payload = service.execute(
            {"tenant": "nope", "query": "count(/)"}
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown_tenant"

    def test_unknown_document_404(self, service):
        for doc in [99, "missing"]:
            status, payload = service.execute(
                {"query": "count(/)", "doc": doc}
            )
            assert status == 404
            assert payload["error"]["code"] == "unknown_document"

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"query": ""},
            {"query": 7},
            {"query": "count(/)", "doc": True},
            {"query": "count(/)", "deadline": -1},
            {"query": "count(/)", "variables": "nope"},
        ],
    )
    def test_malformed_requests_400(self, service, payload):
        status, body = service.execute(payload)
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_bad_query_400(self, service):
        status, payload = service.execute({"query": "//item["})
        assert status == 400
        assert payload["error"]["code"] == "bad_query"

    def test_tenant_limit_422(self, service):
        status, payload = service.execute(
            {"tenant": "tiny", "query": "//item[position() > 1]"}
        )
        assert status == 422
        assert payload["error"]["code"] == "limit_exceeded"
        assert service.counters["rejected_limits"] == 1

    def test_deadline_breach_408(self, service):
        status, payload = service.execute(
            {"query": "count(//item)", "deadline": 1e-9}
        )
        assert status == 408
        assert payload["error"]["code"] == "deadline_exceeded"
        assert service.counters["rejected_deadline"] == 1

    def test_tenant_isolation(self, service):
        service.execute({"query": "count(//item)"})
        service.execute({"tenant": "tiny", "query": "count(/)"})
        stats = service.stats_payload()["tenants"]
        assert stats["default"]["queries"] == 1
        assert stats["tiny"]["queries"] == 1

    def test_batch_evaluates_every_document(self, service, store_path):
        status, payload = service.execute_batch({"query": "count(//item)"})
        assert status == 200
        assert payload["meta"]["ok"] is True
        assert payload["meta"]["documents"] == len(DOC_SOURCES)
        by_doc = {r["doc"]: r["value"] for r in payload["results"]}
        assert by_doc == {
            "alpha": 2.0, "beta": 1.0, "gamma": 5.0, "delta": 0.0
        }
        # Parity against direct per-document session runs.
        store = open_cached(store_path)
        session = XPathSession()
        for index, name in enumerate(DOC_NAMES):
            direct = session.run("count(//item)", store.document_at(index))
            assert canonical_json(by_doc[name]) == canonical_json(
                encode_value(direct.value)
            )


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_queue_overflow_is_429_not_422(self, service):
        for _ in range(service.capacity):
            service.admit()
        with pytest.raises(RequestRejected) as excinfo:
            service.admit()
        assert excinfo.value.status == 429
        assert excinfo.value.code == "queue_full"
        assert service.counters["rejected_queue"] == 1
        # Distinct from a tenant limit breach on the same service.
        status, payload = service.execute(
            {"tenant": "tiny", "query": "//item[position() > 1]"}
        )
        assert (status, payload["error"]["code"]) == (422, "limit_exceeded")
        for _ in range(service.capacity):
            service.release()
        service.admit()
        service.release()

    def test_draining_refuses_with_503(self, service):
        service.start_draining()
        with pytest.raises(RequestRejected) as excinfo:
            service.admit()
        assert excinfo.value.status == 503
        assert service.health_payload()[0] == 503

    def test_admission_is_thread_safe(self, service):
        admitted, rejected = [], []

        def worker():
            try:
                service.admit()
                admitted.append(1)
            except RequestRejected:
                rejected.append(1)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == service.capacity
        assert len(rejected) == 16 - service.capacity
        assert service.in_flight == service.capacity


# ----------------------------------------------------------------------
# The HTTP shell (real sockets)
# ----------------------------------------------------------------------
async def http_request(host, port, method, path, body=None, *,
                       reader=None, writer=None, close=True):
    """Minimal HTTP/1.1 client; returns (status, payload, reader, writer)."""
    if reader is None:
        reader, writer = await asyncio.open_connection(host, port)
    data = json.dumps(body).encode() if body is not None else b""
    connection = "close" if close else "keep-alive"
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"Content-Length: {len(data)}\r\nConnection: {connection}\r\n\r\n"
        ).encode() + data
    )
    await writer.drain()
    status_line = await asyncio.wait_for(reader.readline(), 30)
    status = int(status_line.split(b" ", 2)[1])
    length = None
    while True:
        line = await asyncio.wait_for(reader.readline(), 30)
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    payload = json.loads(await asyncio.wait_for(reader.readexactly(length), 30))
    if close:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        return status, payload, None, None
    return status, payload, reader, writer


def run_with_server(store_path, test_coro, **config_overrides):
    """Start a QueryServer on an ephemeral port, run the coroutine, drain."""

    async def main():
        service = QueryService(make_config(store_path, **config_overrides))
        server = QueryServer(service)
        host, port = await server.start()
        try:
            await test_coro(service, server, host, port)
        finally:
            await server.drain()

    asyncio.run(main())


class TestHTTPServer:
    def test_query_and_health_over_http(self, store_path):
        async def scenario(service, server, host, port):
            status, payload, _, _ = await http_request(
                host, port, "GET", "/healthz"
            )
            assert (status, payload) == (200, {"status": "ok"})
            status, payload, _, _ = await http_request(
                host, port, "POST", "/query", {"query": "count(//item)"}
            )
            assert status == 200
            assert payload["value"] == 2.0

        run_with_server(store_path, scenario)

    def test_routing_and_malformed_json(self, store_path):
        async def scenario(service, server, host, port):
            status, payload, _, _ = await http_request(
                host, port, "GET", "/nope"
            )
            assert status == 404
            status, payload, _, _ = await http_request(
                host, port, "PUT", "/query", {"query": "count(/)"}
            )
            assert status == 405
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 8\r\nConnection: close\r\n\r\nnot json"
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 30)
            assert b" 400 " in raw.split(b"\r\n", 1)[0]
            writer.close()

        run_with_server(store_path, scenario)

    def test_keep_alive_reuses_connection(self, store_path):
        async def scenario(service, server, host, port):
            status, payload, reader, writer = await http_request(
                host, port, "POST", "/query",
                {"query": "count(//item)"}, close=False,
            )
            assert (status, payload["value"]) == (200, 2.0)
            status, payload, reader, writer = await http_request(
                host, port, "POST", "/query",
                {"query": "count(//item)", "doc": 1},
                reader=reader, writer=writer,
            )
            assert (status, payload["value"]) == (200, 1.0)

        run_with_server(store_path, scenario)

    def test_queue_overflow_over_http_is_429(self, store_path):
        async def scenario(service, server, host, port):
            original = service.execute
            gate = threading.Event()

            def slow_execute(payload):
                gate.wait(10)
                return original(payload)

            service.execute = slow_execute
            try:
                tasks = [
                    asyncio.create_task(
                        http_request(
                            host, port, "POST", "/query",
                            {"query": "count(/)"},
                        )
                    )
                    for _ in range(service.capacity + 3)
                ]
                # Wait until every admission slot is claimed, then open
                # the gate so the admitted requests finish.
                while service.in_flight < service.capacity:
                    await asyncio.sleep(0.01)
                await asyncio.sleep(0.05)
                gate.set()
                outcomes = await asyncio.gather(*tasks)
            finally:
                service.execute = original
            statuses = sorted(status for status, _, _, _ in outcomes)
            assert statuses.count(429) == 3
            assert statuses.count(200) == service.capacity
            rejected = [p for s, p, _, _ in outcomes if s == 429]
            assert all(
                p["error"]["code"] == "queue_full" for p in rejected
            )

        run_with_server(store_path, scenario, max_queue=2, max_concurrency=2)

    def test_batch_connection_reaches_eof(self, store_path):
        # Regression: the process pool used to fork on the first /batch
        # request, and the forked workers inherited the client socket —
        # the response arrived but the connection never closed.
        async def scenario(service, server, host, port):
            status, payload, _, _ = await http_request(
                host, port, "POST", "/batch", {"query": "count(//item)"}
            )
            assert status == 200
            assert payload["meta"]["ok"] is True
            values = {r["doc"]: r["value"] for r in payload["results"]}
            assert values["gamma"] == 5.0

        run_with_server(store_path, scenario)

    def test_drain_flips_health_then_stops_listening(self, store_path):
        async def scenario(service, server, host, port):
            service.start_draining()
            status, payload, _, _ = await http_request(
                host, port, "GET", "/healthz"
            )
            assert (status, payload) == (503, {"status": "draining"})
            status, payload, _, _ = await http_request(
                host, port, "POST", "/query", {"query": "count(/)"}
            )
            assert status == 503
            assert payload["error"]["code"] == "draining"

        run_with_server(store_path, scenario)

    def test_concurrent_clients_agree_with_direct_run(self, store_path):
        async def scenario(service, server, host, port):
            store = open_cached(store_path)
            expected = canonical_json(
                encode_value(
                    XPathSession().run("//item", store.document_at(2)).value
                )
            )

            async def one_client(_):
                status, payload, _, _ = await http_request(
                    host, port, "POST", "/query",
                    {"query": "//item", "doc": 2},
                )
                assert status == 200
                assert canonical_json(payload["value"]) == expected

            await asyncio.gather(*[one_client(i) for i in range(32)])
            stats = service.stats_payload()
            assert stats["counters"]["requests"] == 32
            assert stats["in_flight"] == 0

        run_with_server(
            store_path, scenario, max_queue=40, max_concurrency=4
        )
