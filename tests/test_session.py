"""Tests for the session layer: XPathSession, QueryResult, EvalLimits.

Covers the ISSUE-3 acceptance surface: session isolation (caches, engine
pools and stats never shared), cooperative resource-limit enforcement on
the exponential naive engine, the QueryResult provenance (plan, fragment,
engine, cache hit, stats, timing) with its golden ``explain()`` output, and
the back-compat delegation of the module-level ``api.*`` helpers to the
process default session.
"""

from __future__ import annotations

import textwrap

import pytest

import repro
from repro import api
from repro.collection import Collection
from repro.engines.base import EvalLimits, EvaluationStats, LimitGuard
from repro.errors import ResourceLimitExceeded, XPathEvaluationError
from repro.plan import DEFAULT_PLAN_CACHE, PlanCache
from repro.session import ENGINE_CLASSES, QueryResult, XPathSession
from repro.workloads.documents import doc_flat
from repro.workloads.queries import experiment1_query

SIMPLE_XML = "<a><b>1</b><b>2</b></a>"


@pytest.fixture
def doc():
    return api.parse(SIMPLE_XML)


# ----------------------------------------------------------------------
# QueryResult provenance
# ----------------------------------------------------------------------
class TestQueryResult:
    def test_run_returns_rich_result(self, doc):
        session = XPathSession()
        result = session.run("//b", doc)
        assert isinstance(result, QueryResult)
        assert [node.string_value() for node in result.nodes] == ["1", "2"]
        assert result.engine_name == "topdown"
        assert result.plan.source == "//b"
        assert result.fragment_name == "Core XPath"
        assert result.cache_hit is False
        assert result.stats.total_work() > 0
        assert result.elapsed_seconds >= 0.0
        assert result.limits.unlimited

    def test_cache_hit_flag_flips_on_repeat(self, doc):
        session = XPathSession()
        assert session.run("//b", doc).cache_hit is False
        assert session.run("//b", doc).cache_hit is True

    def test_prebuilt_plan_has_no_cache_flag(self, doc):
        session = XPathSession()
        plan = session.compile("//b")
        result = session.run(plan, doc)
        assert result.cache_hit is None
        assert result.plan is plan

    def test_scalar_result_value_and_nodes_error(self, doc):
        session = XPathSession()
        result = session.run("count(//b)", doc)
        assert result.value == 2.0
        assert not result.is_node_set
        with pytest.raises(XPathEvaluationError, match="does not produce a node set"):
            result.nodes

    def test_auto_engine_resolution_recorded(self, doc):
        session = XPathSession(engine="auto")
        result = session.run("//b", doc)
        assert result.engine_name == "corexpath"
        assert result.plan.requested_engine == "auto"

    def test_explain_golden_output(self, doc):
        session = XPathSession()
        result = session.run("//b", doc)
        expected = textwrap.dedent(
            """\
            query:      //b
            normalized: /descendant-or-self::node()/child::b
            fragment:   Core XPath  [time O(|D|·|Q|)]
            streaming:  yes (single-pass, O(depth) state)
            compiled:   yes (3-instruction array program)
            engine:     topdown  (fragment recommends corexpath)
            cache:      miss (compiled)
            limits:     unlimited
            result:     node-set, 2 node(s)
            stats:      expression_evaluations=1, location_step_applications=7, axis_nodes_visited=8"""
        )
        assert result.explain(include_timing=False) == expected

    def test_explain_golden_output_auto_engine(self, doc):
        session = XPathSession(engine="auto")
        result = session.run("//b", doc)
        expected = textwrap.dedent(
            """\
            query:      //b
            normalized: /descendant-or-self::node()/child::b
            fragment:   Core XPath  [time O(|D|·|Q|)]
            streaming:  yes (single-pass, O(depth) state)
            compiled:   yes (3-instruction array program)
            engine:     corexpath  (resolved from 'auto', recommended for this fragment)
            cache:      miss (compiled)
            limits:     unlimited
            result:     node-set, 2 node(s)
            stats:      algebra_operations=7, algebra_evaluations=7"""
        )
        assert result.explain(include_timing=False) == expected

    def test_explain_timing_line(self, doc):
        result = XPathSession().run("//b", doc)
        lines = result.explain().splitlines()
        assert lines[-1].startswith("time:")
        assert lines[-1].endswith("ms")
        # Without timing, everything else is unchanged.
        assert lines[:-1] == result.explain(include_timing=False).splitlines()

    def test_session_explain_without_document_is_compile_only(self):
        session = XPathSession()
        text = session.explain("//b")
        assert "normalized: /descendant-or-self::node()/child::b" in text
        assert "result:" not in text
        assert "stats:" not in text


# ----------------------------------------------------------------------
# Session isolation
# ----------------------------------------------------------------------
class TestSessionIsolation:
    def test_sessions_do_not_share_caches(self, doc):
        first, second = XPathSession(), XPathSession()
        first.run("//b", doc)
        assert len(first.cache) == 1
        assert len(second.cache) == 0
        # Both compile from scratch: neither sees the other's plans.
        assert second.run("//b", doc).cache_hit is False
        assert first.cache.stats.misses == 1
        assert second.cache.stats.misses == 1

    def test_sessions_do_not_share_stats(self, doc):
        first, second = XPathSession(), XPathSession()
        first.run("//b", doc)
        first.run("count(//b)", doc)
        assert first.stats.queries == 2
        assert second.stats.queries == 0

    def test_sessions_do_not_share_engine_pools(self, doc):
        first, second = XPathSession(), XPathSession()
        assert first.engine("topdown") is not second.engine("topdown")
        # ... but within one session the instance is reused.
        assert first.engine("topdown") is first.engine("topdown")

    def test_session_isolated_from_default_session(self, doc):
        isolated = XPathSession()
        before = api.default_session().stats.queries
        isolated.run("//b", doc)
        assert api.default_session().stats.queries == before
        assert isolated.cache is not api.plan_cache()

    def test_default_variables_merged_under_call_variables(self, doc):
        session = XPathSession(variables={"x": 1.0, "y": 2.0})
        assert session.evaluate("$x + $y", doc) == 3.0
        assert session.evaluate("$x + $y", doc, variables={"y": 10.0}) == 11.0
        # The session defaults are untouched by per-call overrides.
        assert session.variables == {"x": 1.0, "y": 2.0}


# ----------------------------------------------------------------------
# Resource limits
# ----------------------------------------------------------------------
class TestEvalLimits:
    def test_operation_budget_stops_exponential_naive_query(self):
        # Experiment 1's antagonist-axis chain is Θ(|D|^|Q|) on the naive
        # engine; the budget must abort it long before completion.
        session = XPathSession(limits=EvalLimits(max_operations=20_000))
        document = doc_flat(3)
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            session.run(experiment1_query(10), document, engine="naive")
        error = excinfo.value
        assert error.limit == "max_operations"
        # Partial stats ride on the exception (acceptance criterion).
        assert error.stats is not None
        assert error.stats.total_work() > 20_000
        assert error.limits.max_operations == 20_000

    def test_breach_recorded_in_session_stats(self):
        session = XPathSession(limits=EvalLimits(max_operations=10_000))
        with pytest.raises(ResourceLimitExceeded):
            session.run(experiment1_query(10), doc_flat(3), engine="naive")
        assert session.stats.limit_breaches == 1
        assert session.stats.errors == 1
        assert session.stats.queries == 1
        assert session.stats.total_work > 0  # partial work still accounted

    def test_per_call_limits_override_session_limits(self, doc):
        session = XPathSession(limits=EvalLimits(max_operations=1))
        # Session limits alone would trip immediately …
        with pytest.raises(ResourceLimitExceeded):
            session.run("//b", doc)
        # … but a per-call override lifts them for that call only.
        result = session.run("//b", doc, limits=EvalLimits())
        assert len(result.nodes) == 2

    def test_max_result_nodes(self, doc):
        session = XPathSession()
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            session.run("//b", doc, limits=EvalLimits(max_result_nodes=1))
        assert excinfo.value.limit == "max_result_nodes"
        # Under the cap: fine.
        result = session.run("//b", doc, limits=EvalLimits(max_result_nodes=2))
        assert len(result.nodes) == 2

    def test_timeout_stops_long_naive_evaluation(self):
        session = XPathSession()
        with pytest.raises(ResourceLimitExceeded) as excinfo:
            session.run(
                experiment1_query(12),
                doc_flat(3),
                engine="naive",
                limits=EvalLimits(timeout_seconds=0.05),
            )
        assert excinfo.value.limit == "timeout_seconds"

    def test_limits_enforced_on_every_engine(self):
        # Cooperative checkpoints exist in all 8 engines: a tiny operation
        # budget must trip each of them on a non-trivial query.
        document = doc_flat(4)
        for name in sorted(ENGINE_CLASSES):
            session = XPathSession(limits=EvalLimits(max_operations=2))
            with pytest.raises(ResourceLimitExceeded):
                session.run("//a/b/parent::a/b", document, engine=name)

    def test_unlimited_limits_are_free(self):
        limits = EvalLimits()
        assert limits.unlimited
        assert limits.guard() is None
        assert limits.describe() == "unlimited"

    def test_describe_renders_all_limits(self):
        limits = EvalLimits(
            max_result_nodes=10, max_operations=1000, timeout_seconds=1.5
        )
        assert limits.describe() == (
            "max_result_nodes=10, max_operations=1000, timeout=1.5s"
        )

    def test_guard_checkpoint_outside_budget_raises(self):
        stats = EvaluationStats(guard=LimitGuard(EvalLimits(max_operations=5)))
        stats.expression_evaluations = 5
        stats.checkpoint()  # exactly at budget: fine
        stats.expression_evaluations = 6
        with pytest.raises(ResourceLimitExceeded):
            stats.checkpoint()


# ----------------------------------------------------------------------
# Module-level api delegation (back-compat)
# ----------------------------------------------------------------------
class TestApiDelegation:
    def test_select_and_evaluate_return_plain_values(self, doc):
        nodes = api.select("//b", doc)
        assert isinstance(nodes, list) and len(nodes) == 2
        assert api.evaluate("count(//b)", doc) == 2.0

    def test_default_plan_cache_is_default_sessions_cache(self):
        assert api.plan_cache() is DEFAULT_PLAN_CACHE
        assert api.default_session().cache is DEFAULT_PLAN_CACHE

    def test_module_calls_are_recorded_on_default_session(self, doc):
        before = api.default_session().stats.queries
        api.select("//b", doc)
        api.run("//b", doc)
        assert api.default_session().stats.queries == before + 2

    def test_engines_are_pooled_not_reinstantiated(self, doc):
        session = api.default_session()
        api.select("//b", doc)
        first = session.engine("topdown")
        api.select("//b", doc)
        assert session.engine("topdown") is first

    def test_engine_for_query_uses_default_session_pool(self):
        engine = api.engine_for_query("//a/b")
        assert engine.name == "corexpath"
        assert api.engine_for_query("//a/b") is engine

    def test_session_factory_accepts_config(self, doc):
        session = api.session(
            engine="auto", cache_size=4, limits=EvalLimits(max_operations=10**9)
        )
        assert session.default_engine == "auto"
        assert session.cache.maxsize == 4
        assert session.run("//b", doc).engine_name == "corexpath"

    def test_module_explain(self, doc):
        text = api.explain("//b", doc)
        assert "fragment:   Core XPath" in text
        assert repro.explain is api.explain

    def test_package_reexports(self):
        assert repro.XPathSession is XPathSession
        assert repro.EvalLimits is EvalLimits
        assert repro.ResourceLimitExceeded is ResourceLimitExceeded
        assert repro.QueryResult is QueryResult

    def test_unknown_engine_raises(self, doc):
        with pytest.raises(XPathEvaluationError, match="unknown engine"):
            XPathSession().run("//b", doc, engine="nonsense")


# ----------------------------------------------------------------------
# Session-aware collections
# ----------------------------------------------------------------------
class TestSessionCollections:
    SOURCES = ["<a><b/></a>", "<a><b/><b/></a>", "<a/>"]

    def test_collection_bound_to_session(self):
        session = XPathSession()
        docs = session.parse_collection(self.SOURCES)
        assert docs.session is session
        results = docs.select("//b")
        assert [len(r.nodes) for r in results] == [1, 2, 0]
        # Work is recorded on the owning session: one query per document.
        assert session.stats.queries == 3
        assert len(session.cache) == 1

    def test_batch_run_reports_cache_provenance(self):
        session = XPathSession()
        docs = session.parse_collection(self.SOURCES)
        first = docs.select("//b")
        assert first.cache_hit is False
        again = docs.select("//b")
        assert again.cache_hit is True
        assert first.report.engine_name == "topdown"
        assert first.report.query == "//b"

    def test_select_many_reports_hits_vs_compiled(self):
        session = XPathSession()
        docs = session.parse_collection(self.SOURCES)
        docs.select("//b")  # prime one of the two plans
        runs = docs.select_many(["//b", "//a"])
        hits = {report.query: report.cache_hit for report in runs.plan_reports}
        assert hits == {"//b": True, "//a": False}
        assert runs.cache_hits == 1
        assert runs.compiled == 1
        # The list shape is unchanged for pre-existing consumers.
        assert [len(r.nodes) for r in runs[0]] == [1, 2, 0]

    def test_session_limits_apply_per_document(self):
        session = XPathSession(limits=EvalLimits(max_result_nodes=1))
        docs = session.parse_collection(self.SOURCES)
        results = docs.select("//b")
        # doc[1] has two result nodes → breached; others fine.
        assert [r.ok for r in results] == [True, False, True]
        assert isinstance(results[1].error, ResourceLimitExceeded)
        assert session.stats.limit_breaches == 1
        assert not results.ok

    def test_default_collection_uses_default_session(self):
        docs = api.parse_collection(self.SOURCES)
        assert docs.session is api.default_session()

    def test_collection_constructor_session_binding(self):
        session = XPathSession()
        docs = session.collection([api.parse(s) for s in self.SOURCES])
        assert isinstance(docs, Collection)
        docs.evaluate("count(//b)")
        assert session.stats.queries == 3
