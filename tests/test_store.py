"""Tests for the persistent on-disk document store (repro.store).

Five fronts:

* **round-trip fidelity** — documents rebuilt from a store file are
  node-for-node identical to the originals (types, names, values, orders,
  parent links, namespace/attribute order, merged text, entity-expanded
  content), property-tested over the seeded random corpus the differential
  suite uses;
* **engine parity** — every registered engine returns byte-identical
  document orders over a stored-and-reopened document and a freshly parsed
  one, across all thirteen axes (the acceptance bar of ISSUE 8), and the
  compiled engine answers straight off the mapped columns without ever
  materialising a tree;
* **corruption** — a damaged or truncated store file is a positioned
  :class:`~repro.errors.StoreCorruptError`, never a crash, and in a batch a
  corrupt document block fails only its own entry (also exercised through
  the deterministic ``corrupt@store`` fault-injection site);
* **shipping** — stored documents pickle as ``(path, position)`` origins,
  serial / thread / process batch runs agree node for node, and deleting
  the store file behind a materialised document silently falls back to the
  flat-preorder payload;
* **integration** — ``api.build_store`` / ``api.open_store``, session
  coercion of handles, ``REPRO_STORE_DEFAULT`` collection routing, and the
  ``store build`` / ``store info`` / ``store query`` CLI subcommands.
"""

from __future__ import annotations

import gc
import os
import pickle
import threading
import weakref

import pytest

from repro import api
from repro.cli import run as cli_run
from repro.collection import Collection
from repro.errors import ReproError, StoreCorruptError
from repro.faultinject import FaultPlan, inject
from repro.plan import plan_for
from repro.store import (
    MAGIC,
    DocumentStore,
    StoredCollection,
    build_store,
    invalidate,
    open_cached,
)
from repro.store import format as store_format
from repro.workloads.documents import (
    doc_dblp_source,
    doc_figure8,
    doc_flat,
    random_document,
)
from repro.xmlmodel.nodes import NodeType
from repro.xmlmodel.parser import parse_xml

RICH_SOURCES = [
    "<a id='x'><b n='1'>hi</b><b n='2'>yo<!--note--></b><?pi data?></a>",
    "<r xmlns:p='urn:x'><p:q a='1' b='2'/>text<p:q/></r>",
    # Entity references expand during parsing; the store must round-trip
    # the expanded text, and adjacent text must stay merged.
    "<!DOCTYPE d [<!ENTITY e \"42\">]><d>pre &e; post</d>",
    "<m><x/><x>1</x><y><x deep='yes'/></y></m>",
]

#: All thirteen XPath axes (the ISSUE-8 acceptance matrix).
AXES = (
    "self",
    "child",
    "parent",
    "descendant",
    "ancestor",
    "descendant-or-self",
    "ancestor-or-self",
    "following",
    "preceding",
    "following-sibling",
    "preceding-sibling",
    "attribute",
    "namespace",
)


def _node_tuple(node):
    return (
        node.node_type,
        node.name,
        node.value,
        node.order,
        node.parent.order if node.parent is not None else -1,
    )


def _assert_identical(rebuilt, original):
    assert len(rebuilt) == len(original)
    assert rebuilt.id_attribute == original.id_attribute
    for ours, theirs in zip(rebuilt.dom, original.dom):
        assert _node_tuple(ours) == _node_tuple(theirs)
        # Namespace/attribute/child order is part of the document identity:
        # child0_sequence is the order-defining sequence.
        assert [id(c) - id(c) or c.order for c in ours.child0_sequence()] == [
            c.order for c in theirs.child0_sequence()
        ]


@pytest.fixture
def rich_store(tmp_path):
    documents = [parse_xml(source) for source in RICH_SOURCES]
    path = str(tmp_path / "rich.reproxs")
    build_store(path, documents, names=[f"doc{i}" for i in range(len(documents))])
    store = DocumentStore.open(path)
    yield store, documents
    store.close()


class TestRoundTrip:
    def test_rich_documents_round_trip(self, rich_store):
        store, documents = rich_store
        for position, original in enumerate(documents):
            rebuilt = store.document_at(position).materialize()
            _assert_identical(rebuilt, original)

    def test_entity_expansion_and_text_merge_preserved(self, rich_store):
        store, documents = rich_store
        rebuilt = store.document_at(2).materialize()
        texts = [n.value for n in rebuilt.dom if n.node_type is NodeType.TEXT]
        assert texts == ["pre 42 post"]

    def test_names_and_counts(self, rich_store):
        store, documents = rich_store
        assert store.names == tuple(f"doc{i}" for i in range(len(documents)))
        info = store.info()
        assert info["documents"] == len(documents)
        assert info["nodes"] == sum(len(d) for d in documents)
        assert store.verify()

    @pytest.mark.parametrize("seed", [3, 17, 42, 99, 123])
    def test_random_corpus_round_trips(self, seed, tmp_path):
        original = random_document(
            seed, max_depth=4, max_children=4, with_namespaces=True
        )
        path = str(tmp_path / f"rand{seed}.reproxs")
        with DocumentStore.build(path, [original]) as store:
            _assert_identical(store.document_at(0).materialize(), original)

    def test_dblp_corpus_round_trips(self, tmp_path):
        original = parse_xml(doc_dblp_source(50))
        path = str(tmp_path / "dblp.reproxs")
        with DocumentStore.build(path, [original]) as store:
            rebuilt = store.document_at(0).materialize()
            _assert_identical(rebuilt, original)
            # The internal-subset entities must arrive expanded.
            assert "ü" in " ".join(
                n.value for n in rebuilt.dom if n.node_type is NodeType.TEXT
            )

    def test_materialize_is_cached(self, rich_store):
        store, _ = rich_store
        handle = store.document_at(0)
        assert handle.materialize() is handle.materialize()

    def test_empty_store(self, tmp_path):
        path = str(tmp_path / "empty.reproxs")
        with DocumentStore.build(path, []) as store:
            assert store.info()["documents"] == 0
            assert store.verify()


ENGINE_DOC = (
    "<lib xmlns:p='urn:q'><a id='r1'><b>one</b><b n='2'>two</b></a>"
    "<a><c><b deep='x'>three</b></c><!--mark--><?pi d?></a></lib>"
)


class TestEngineParity:
    @pytest.mark.parametrize("engine", sorted(api.ENGINE_CLASSES))
    @pytest.mark.parametrize("axis", AXES)
    def test_axis_parity_stored_vs_fresh(self, engine, axis, tmp_path):
        fresh = parse_xml(ENGINE_DOC)
        path = str(tmp_path / "parity.reproxs")
        with DocumentStore.build(path, [parse_xml(ENGINE_DOC)]) as store:
            stored = store.document_at(0).materialize()
            query = f"//*/{axis}::node()"
            try:
                expected = [n.order for n in api.select(query, fresh, engine=engine)]
            except ReproError as error:
                with pytest.raises(type(error)):
                    api.select(query, stored, engine=engine)
                return
            got = [n.order for n in api.select(query, stored, engine=engine)]
            assert got == expected

    @pytest.mark.parametrize(
        "query",
        [
            "//b",
            "//a/b[@n='2']",
            "//b[. = 'three']",
            "/lib/a//b",
            "//*[@id]",
        ],
    )
    def test_compiled_runs_off_the_map_without_a_tree(self, query, tmp_path):
        fresh = parse_xml(ENGINE_DOC)
        plan = plan_for(query, engine="compiled", cache=None)
        expected = [n.order for n in plan.select(fresh)]
        path = str(tmp_path / "mapped.reproxs")
        with DocumentStore.build(path, [parse_xml(ENGINE_DOC)]) as store:
            handle = store.document_at(0)
            assert handle.orders(plan) == expected
            # The column path never built a tree.
            assert handle._document is None


class TestCorruption:
    def _built(self, tmp_path, name="c.reproxs"):
        path = str(tmp_path / name)
        build_store(
            path,
            [parse_xml(s) for s in RICH_SOURCES],
            names=[f"doc{i}" for i in range(len(RICH_SOURCES))],
        )
        return path

    def _flip(self, path, offset):
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes((byte[0] ^ 0xFF,)))

    def test_bad_magic_is_positioned_error(self, tmp_path):
        path = self._built(tmp_path)
        self._flip(path, 0)
        with pytest.raises(StoreCorruptError, match="magic"):
            DocumentStore.open(path)

    def test_truncated_file(self, tmp_path):
        path = self._built(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(StoreCorruptError):
            DocumentStore.open(path)

    def test_tiny_file(self, tmp_path):
        path = str(tmp_path / "tiny.reproxs")
        with open(path, "wb") as handle:
            handle.write(MAGIC)
        with pytest.raises(StoreCorruptError):
            DocumentStore.open(path)

    def test_corrupt_toc_fails_open(self, tmp_path):
        path = self._built(tmp_path)
        size = os.path.getsize(path)
        self._flip(path, size - 4)  # inside the TOC
        with pytest.raises(StoreCorruptError):
            DocumentStore.open(path)

    def test_block_damage_is_isolated_per_document(self, tmp_path):
        path = self._built(tmp_path)
        with DocumentStore.open(path) as probe:
            target = probe._entries[1]
            damage_at = target.block_off + 8
        self._flip(path, damage_at)
        store = DocumentStore.open(path)  # open-time checks still pass
        try:
            batch = StoredCollection(store).select("//b | //*")
            assert not batch.ok
            failed = [r for r in batch if not r.ok]
            assert [r.index for r in failed] == [1]
            assert isinstance(failed[0].error, StoreCorruptError)
            assert "document 1" in str(failed[0].error)
            assert all(r.ok for r in batch if r.index != 1)
            with pytest.raises(StoreCorruptError):
                store.verify()
        finally:
            store.close()

    def test_fault_site_simulates_block_damage(self, tmp_path):
        path = self._built(tmp_path)
        with DocumentStore.open(path) as store:
            collection = StoredCollection(store)
            with inject(FaultPlan.parse("corrupt@store:index=2")):
                batch = collection.select("//*")
            failed = [r for r in batch if not r.ok]
            assert [r.index for r in failed] == [2]
            assert isinstance(failed[0].error, StoreCorruptError)

    def test_fault_site_fires_once_per_handle_check(self, tmp_path):
        path = self._built(tmp_path)
        with DocumentStore.open(path) as store:
            with inject(FaultPlan.parse("corrupt@store:index=0")):
                with pytest.raises(StoreCorruptError):
                    store.document_at(0).materialize()

    def test_error_pickles_across_process_wire(self, tmp_path):
        error = StoreCorruptError(
            "checksum mismatch", path="x.reproxs", offset=64, position=3
        )
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, StoreCorruptError)
        assert clone.position == 3 and clone.offset == 64


class TestShipping:
    def test_handle_pickles_as_path(self, rich_store):
        store, documents = rich_store
        blob = pickle.dumps(store.document_at(1))
        assert len(blob) < 500  # a path + a position, not a tree
        _assert_identical(pickle.loads(blob).materialize(), documents[1])

    def test_materialized_document_pickles_as_origin(self, rich_store):
        store, documents = rich_store
        document = store.document_at(0).materialize()
        assert document._store_origin == (store.path, 0)
        blob = pickle.dumps(document)
        assert len(blob) < 500
        _assert_identical(pickle.loads(blob), documents[0])

    def test_deleted_file_falls_back_to_flat_payload(self, tmp_path):
        original = parse_xml(RICH_SOURCES[0])
        path = str(tmp_path / "gone.reproxs")
        store = DocumentStore.build(path, [original])
        document = store.document_at(0).materialize()
        store.close()
        os.unlink(path)
        rebuilt = pickle.loads(pickle.dumps(document))
        _assert_identical(rebuilt, original)

    def test_open_cached_reuses_one_mapping(self, rich_store):
        store, _ = rich_store
        assert open_cached(store.path) is open_cached(store.path)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_match_serial(self, backend, tmp_path):
        documents = [parse_xml(s) for s in RICH_SOURCES] + [
            random_document(7, max_depth=3, max_children=3)
        ]
        path = str(tmp_path / "par.reproxs")
        with DocumentStore.build(path, documents) as store:
            collection = StoredCollection(store)
            serial = collection.select("//*[@*] | //b")
            parallel = collection.select(
                "//*[@*] | //b", parallel=True, backend=backend, max_workers=2
            )
            assert serial.ok and parallel.ok
            for left, right in zip(serial, parallel):
                assert [n.order for n in left.nodes] == [
                    n.order for n in right.nodes
                ]


class TestStoreCacheLifetime:
    """Regression tests for ``open_cached`` mapping lifetime (ISSUE 9).

    A rebuilt store file used to leave the superseded mapping in
    ``_STORE_CACHE`` without ``close()`` — one leaked mmap + fd per
    rebuild — and the loser of the double-checked-lock race was dropped
    unmapped.  Both must now be closed, ``invalidate`` must exist, and
    the cache must be bounded.
    """

    @staticmethod
    def _build(path, payload="<r><x v='1'/></r>"):
        build_store(path, [parse_xml(payload)])

    def test_rebuild_closes_superseded_mapping(self, tmp_path):
        path = str(tmp_path / "rebuild.reproxs")
        self._build(path)
        first = open_cached(path)
        assert not first._mmap.closed
        # Rebuild with different content (and size, so the signature
        # changes even on coarse-mtime filesystems).
        self._build(path, "<r>" + "<x pad='yes'/>" * 8 + "</r>")
        second = open_cached(path)
        assert second is not first
        assert first._mmap.closed, "superseded mapping leaked on rebuild"
        assert not second._mmap.closed
        assert len(second.document_at(0).materialize()) > len(
            parse_xml("<r><x v='1'/></r>")
        )
        invalidate(path)

    def test_invalidate_closes_and_forgets(self, tmp_path):
        path = str(tmp_path / "inv.reproxs")
        self._build(path)
        store = open_cached(path)
        assert invalidate(path) is True
        assert store._mmap.closed
        assert invalidate(path) is False
        fresh = open_cached(path)
        assert fresh is not store
        assert invalidate(path) is True

    def test_cache_is_bounded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_CACHE_SIZE", "2")
        stores = []
        for index in range(3):
            path = str(tmp_path / f"bounded{index}.reproxs")
            self._build(path)
            stores.append(open_cached(path))
        assert stores[0]._mmap.closed, "LRU mapping survived past the bound"
        assert not stores[1]._mmap.closed
        assert not stores[2]._mmap.closed
        for index in (1, 2):
            invalidate(str(tmp_path / f"bounded{index}.reproxs"))

    def test_concurrent_open_cached_closes_race_losers(self, tmp_path, monkeypatch):
        path = str(tmp_path / "race.reproxs")
        self._build(path)
        opened: list[DocumentStore] = []
        opened_lock = threading.Lock()
        real_open = DocumentStore.open

        def tracking_open(target):
            store = real_open(target)
            with opened_lock:
                opened.append(store)
            return store

        monkeypatch.setattr(DocumentStore, "open", staticmethod(tracking_open))
        barrier = threading.Barrier(8)
        results: list[DocumentStore] = []
        results_lock = threading.Lock()

        def worker():
            barrier.wait()
            store = open_cached(path)
            with results_lock:
                results.append(store)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        assert len({id(store) for store in results}) == 1
        winner = results[0]
        losers = [store for store in opened if store is not winner]
        assert all(store._mmap.closed for store in losers), (
            "race-losing mappings were dropped unmapped"
        )
        invalidate(path)


class TestIntegration:
    def test_api_build_and_open_store(self, tmp_path):
        path = str(tmp_path / "api.reproxs")
        documents = [parse_xml(s) for s in RICH_SOURCES[:2]]
        assert api.build_store(path, documents, names=["x", "y"]) == path
        collection = api.open_store(path)
        try:
            assert collection.names == ("x", "y")
            batch = collection.select("//b")
            assert batch.ok
            assert [len(r.nodes) for r in batch] == [2, 0]
        finally:
            collection.close()

    def test_session_open_store_and_handle_coercion(self, tmp_path):
        path = str(tmp_path / "sess.reproxs")
        api.build_store(path, [parse_xml(RICH_SOURCES[0])])
        session = api.session()
        collection = session.open_store(path)
        try:
            handle = collection.store.document_at(0)
            result = session.run("count(//b)", handle)
            assert result.value == 2.0
            assert session.stats.queries == 1
        finally:
            collection.close()

    def test_plan_select_accepts_handles(self, rich_store):
        store, documents = rich_store
        plan = plan_for("//b", cache=None)
        expected = [n.order for n in plan.select(documents[0])]
        assert [n.order for n in plan.select(store.document_at(0))] == expected

    def test_store_default_env_routes_from_sources(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DEFAULT", "1")
        collection = Collection.from_sources(RICH_SOURCES[:2])
        assert isinstance(collection, StoredCollection)
        batch = collection.select("//b")
        assert batch.ok and [len(r.nodes) for r in batch] == [2, 0]

    def test_store_default_env_off_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DEFAULT", "0")
        collection = Collection.from_sources(RICH_SOURCES[:2])
        assert not isinstance(collection, StoredCollection)

    def test_store_default_routes_sources_one_at_a_time(self, monkeypatch):
        """Regression (ISSUE 9): all sources used to be parsed into live
        trees *before* the store-routing decision, so store-backed
        collections paid peak memory for N simultaneous trees.  Sources
        now stream into the store build one at a time — at most two trees
        are ever alive at once (the one being serialised plus the one the
        generator just parsed)."""
        from repro.xmlmodel import parser as parser_mod

        real_parse = parser_mod.parse_xml
        refs: list[weakref.ref] = []
        peak = [0]

        def tracking_parse(source, **kwargs):
            document = real_parse(source, **kwargs)
            refs.append(weakref.ref(document))
            gc.collect()
            alive = sum(1 for ref in refs if ref() is not None)
            peak[0] = max(peak[0], alive)
            return document

        monkeypatch.setattr(parser_mod, "parse_xml", tracking_parse)
        monkeypatch.setenv("REPRO_STORE_DEFAULT", "1")
        sources = [f"<r><x n='{i}'/></r>" for i in range(6)]
        collection = Collection.from_sources(sources)
        assert isinstance(collection, StoredCollection)
        assert len(refs) == 6
        assert peak[0] <= 2, (
            f"{peak[0]} trees were alive at once; store routing is eager"
        )
        batch = collection.evaluate("count(//x)")
        assert batch.ok and [r.value for r in batch] == [1.0] * 6


@pytest.fixture
def xml_files(tmp_path):
    paths = []
    for index, source in enumerate(RICH_SOURCES[:3]):
        path = tmp_path / f"in{index}.xml"
        path.write_text(source, encoding="utf-8")
        paths.append(str(path))
    return paths


class TestCli:
    def test_build_info_query(self, xml_files, tmp_path, capsys):
        store_path = str(tmp_path / "cli.reproxs")
        assert cli_run(["store", "build", store_path] + xml_files) == 0
        assert "3 document(s)" in capsys.readouterr().out

        assert cli_run(["store", "info", store_path]) == 0
        out = capsys.readouterr().out
        assert "checksums: ok" in out and "documents: 3" in out

        assert cli_run(["store", "query", "//b", store_path]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].endswith("2 node(s)")

    def test_query_scalar_and_parallel(self, xml_files, tmp_path, capsys):
        store_path = str(tmp_path / "cli2.reproxs")
        assert cli_run(["store", "build", store_path] + xml_files) == 0
        capsys.readouterr()
        assert (
            cli_run(["store", "query", "count(//*)", store_path, "--jobs", "2"])
            == 0
        )
        assert len(capsys.readouterr().out.strip().splitlines()) == 3

    def test_build_rejects_malformed_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<broken", encoding="utf-8")
        store_path = str(tmp_path / "never.reproxs")
        assert cli_run(["store", "build", store_path, str(bad)]) == 1
        assert "parse error" in capsys.readouterr().err
        assert not os.path.exists(store_path)

    def test_missing_store_is_io_error(self, tmp_path, capsys):
        assert cli_run(["store", "info", str(tmp_path / "no.reproxs")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_store_never_crashes(self, xml_files, tmp_path, capsys):
        store_path = str(tmp_path / "dmg.reproxs")
        assert cli_run(["store", "build", store_path] + xml_files) == 0
        capsys.readouterr()
        with open(store_path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"XXXXXXXX")
        assert cli_run(["store", "info", store_path]) == 1
        assert "error:" in capsys.readouterr().err
        assert cli_run(["store", "query", "//b", store_path]) == 1
        assert "error:" in capsys.readouterr().err

    def test_block_damage_isolates_in_query(self, xml_files, tmp_path, capsys):
        store_path = str(tmp_path / "iso.reproxs")
        assert cli_run(["store", "build", store_path] + xml_files) == 0
        capsys.readouterr()
        with DocumentStore.open(store_path) as probe:
            damage_at = probe._entries[1].block_off + 8
        with open(store_path, "r+b") as handle:
            handle.seek(damage_at)
            handle.write(b"\xff")
        assert cli_run(["store", "query", "//*", store_path]) == 1
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 2  # two still answer
        assert "document 1" in captured.err

    def test_usage_without_action(self, capsys):
        assert cli_run(["store"]) == 2
        assert "usage" in capsys.readouterr().err


class TestFormatInvariants:
    def test_alignment_helper(self):
        assert store_format.aligned(0) == 0
        assert store_format.aligned(1) == 8
        assert store_format.aligned(8) == 8
        assert store_format.aligned(9) == 16

    def test_all_columns_are_aligned(self, rich_store):
        store, _ = rich_store
        for entry in store._entries:
            for offset in (
                entry.subtree_end_off,
                entry.parent_off,
                entry.depth_off,
                entry.name_col_off,
                entry.value_col_off,
                entry.regular_off,
            ):
                assert offset % store_format.ALIGN == 0

    def test_header_loads_constants(self, rich_store):
        store, _ = rich_store
        with open(store.path, "rb") as handle:
            head = handle.read(len(MAGIC))
        assert head == MAGIC

    def test_store_is_compact(self, tmp_path):
        # 200 identical flat docs share one string table: the store should
        # be far smaller than 200 independent pickles.
        documents = [doc_flat(20) for _ in range(200)]
        path = str(tmp_path / "compact.reproxs")
        with DocumentStore.build(path, documents) as store:
            per_doc = os.path.getsize(path) / 200
            flat_pickle = len(pickle.dumps(documents[0]))
            assert per_doc < 6 * flat_pickle
