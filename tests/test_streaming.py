"""The single-pass streaming evaluator and its wiring.

Covers the streamability analysis, automaton correctness (differentially
against the tree engines over serialised documents — orders must agree
node-for-node), the mirrored well-formedness checks, resource limits at
event granularity, and the session / collection / parallel wiring.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.engines.base import EvalLimits, EvaluationStats
from repro.errors import (
    ResourceLimitExceeded,
    XMLSyntaxError,
    XPathEvaluationError,
)
from repro.plan import compile_plan
from repro.parallel import ParallelExecutor
from repro.session import StreamRun, XPathSession
from repro.streaming import (
    StreamMatch,
    analyze_streamability,
    compile_stream,
    stream_by_default,
    stream_matches,
    stream_select,
)
from repro.workloads.documents import doc_figure8, random_document
from repro.xmlmodel.nodes import NodeType
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import serialize
from repro.xpath.normalize import compile_query


# ----------------------------------------------------------------------
# Streamability analysis
# ----------------------------------------------------------------------
STREAMABLE_QUERIES = [
    "//b",
    "/a/b/c",
    "child::*",
    "self::node()",
    "/descendant-or-self::node()",
    "//@id",
    "//b/attribute::*",
    "//b[@x]",
    "//b[@x='2']",
    "//b[not(@x) and @y!='1']",
    "//b[position()=2]",
    "//b[3]",
    "//*[@id][2]",
    "//b[attribute::x > 1]/c",
    "//text()",
    "//comment()",
    "//processing-instruction('pi')",
    "//a | //b",
    "//b[self::b]",
    "//b[count(@*) = 2]",
    "//b[starts-with(@x, 'ab')]",
    "//b[string-length(@x) > 1]",
    "descendant::b[@x]/self::b",
]

NON_STREAMABLE = {
    "//b/parent::a": "parent",
    "//b/ancestor-or-self::*": "ancestor",
    "//b/following-sibling::b": "following-sibling",
    "//b[last()]": "last()",
    "//b[child::c]": "child",
    "//b[descendant::c]": "descendant",
    "//b[. = 'x']": "string value",
    "//b[string() = 'x']": "string()",
    "count(//b)": "location path",
    "//b[$v]": "variable",
    "//b[/a]": "absolute",
    "//b[id('k')]": "id()",
    "(//b)[1]": "location path",
    "//b[preceding-sibling::b][2]": "preceding-sibling",
    "descendant::b[position() = 2]": "position()",
}


class TestStreamabilityAnalysis:
    @pytest.mark.parametrize("query", STREAMABLE_QUERIES)
    def test_streamable(self, query):
        report = analyze_streamability(compile_query(query))
        assert report.streamable, (query, report.violations)
        assert report.violations == ()

    @pytest.mark.parametrize("query,needle", sorted(NON_STREAMABLE.items()))
    def test_not_streamable_with_reason(self, query, needle):
        report = analyze_streamability(compile_query(query))
        assert not report.streamable, query
        assert any(needle in violation for violation in report.violations), (
            query,
            report.violations,
        )

    def test_classification_carries_streamability(self):
        info = api.classify_query("//b[@x]")
        assert info.streamable and info.streaming_violations == ()
        info = api.classify_query("//b[last()]")
        assert not info.streamable
        assert info.streaming_violations

    def test_plan_exposes_streamability(self):
        assert compile_plan("//b").streamable
        plan = compile_plan("//b/parent::a")
        assert not plan.streamable
        assert plan.streaming_violations

    def test_explain_reports_streamability(self):
        assert "streaming:  yes" in api.explain("//b")
        text = api.explain("//b[last()]")
        assert "streaming:  no (" in text

    def test_compile_stream_rejects_non_streamable(self):
        with pytest.raises(XPathEvaluationError, match="not streamable"):
            compile_stream("//b[last()]")

    def test_plan_memoises_its_automaton(self):
        # A batch over N sources must compile the automaton once, not N
        # times: repeated calls return the identical object, and a
        # retargeted plan carries it over like the algebra plans.
        plan = compile_plan("//b[@x]")
        automaton = plan.stream_automaton()
        assert plan.stream_automaton() is automaton
        assert compile_stream(plan) is automaton
        retargeted = compile_plan(plan, engine="naive")
        assert retargeted.stream_automaton() is automaton


# ----------------------------------------------------------------------
# Automaton vs tree engines (the ground truth)
# ----------------------------------------------------------------------
RICH_XML = (
    '<?xml version="1.0"?>'
    "<!DOCTYPE a>"
    '<a id="r" xmlns:p="urn:x">'
    "<!--top-->"
    '<b x="1" y="2">alpha<c/>beta</b>'
    "<b>plain</b>"
    '<b x="10"><c y="3">gamma</c><![CDATA[raw<>]]>tail</b>'
    "<?pi data ?>"
    "d&amp;e"
    "</a>"
)

DOCUMENTS = {
    "rich": RICH_XML,
    "flat": "<a>" + "<b/>" * 7 + "</a>",
    "deep": "<b>" * 9 + "</b>" * 9,
    "random11": serialize(random_document(11, max_depth=3, max_children=3)),
    "random29": serialize(random_document(29, max_depth=4, max_children=2)),
    "figure8": serialize(doc_figure8()),
}

DIFFERENTIAL_QUERIES = [
    "//b",
    "//c",
    "/a/b",
    "//@x",
    "//@*",
    "//b[@x]/c",
    "//b[@x='10']",
    "//b[@x and @y]",
    "//b[@x or position()=2]",
    "//b[2]",
    "//c[1]",
    "//b[@x > 1]",
    "//b[not(@x)]",
    "//text()",
    "//node()",
    "/descendant-or-self::node()",
    "//comment() | //processing-instruction()",
    "//b/descendant-or-self::c",
    "//*[@y][1]",
    "self::node()",
    "//b[count(@*) >= 1]",
    "//b[starts-with(@x, '1')]",
    "//b[concat(@x, '!') = '10!']",
    "//b | //c | //@x",
]


def _tree_orders(query, document, engine):
    return [node.order for node in api.get_engine(engine).select(query, document)]


class TestStreamingDifferential:
    @pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
    def test_matches_every_tree_engine(self, query):
        info = api.classify_query(query)
        assert info.streamable, query
        engines = sorted(api.ENGINE_CLASSES)
        if not info.in_core_xpath:
            engines = [e for e in engines if e not in ("corexpath", "xpatterns")]
        for name, source in DOCUMENTS.items():
            document = parse_xml(source)
            streamed = [m.order for m in stream_select(query, source)]
            for engine in engines:
                if engine == "xpatterns" and not info.in_xpatterns:
                    continue
                assert streamed == _tree_orders(query, document, engine), (
                    query, name, engine,
                )

    def test_match_records_mirror_tree_nodes(self):
        source = RICH_XML
        document = parse_xml(source)
        for query in ("//b", "//@x", "//text()", "//comment()", "//node()"):
            streamed = stream_select(query, source)
            expected = [
                StreamMatch.from_node(node) for node in api.select(query, document)
            ]
            assert streamed == expected, query

    def test_text_merging_matches_builder(self):
        # CDATA adjacent to character data merges into ONE text node, with
        # the orders (and the merged value) the tree builder produces.
        source = "<a>one<![CDATA[two]]>three<b/>four</a>"
        document = parse_xml(source)
        streamed = stream_select("//text()", source)
        assert [m.order for m in streamed] == [
            n.order for n in api.select("//text()", document)
        ]
        assert [m.value for m in streamed] == ["onetwothree", "four"]

    def test_strip_whitespace_parity(self):
        source = "<a>\n  <b> x </b>\n  <b/>\n</a>"
        document = parse_xml(source, strip_whitespace=True)
        streamed = stream_select("//node()", source, strip_whitespace=True)
        assert [m.order for m in streamed] == [
            n.order for n in api.select("//node()", document)
        ]

    def test_namespace_nodes_consume_orders(self):
        # xmlns attributes become namespace nodes ordered before ordinary
        # attributes; the streamed orders must account for them identically.
        source = '<a xmlns:p="urn:x" q="1"><p:b r="2"/></a>'
        document = parse_xml(source)
        streamed = stream_select("//@* | //*", source)
        assert [m.order for m in streamed] == [
            n.order for n in api.select("//@* | //*", document)
        ]

    def test_position_counters_reset_per_parent(self):
        source = "<a><g><b/><b/></g><g><b/><b/><b/></g></a>"
        document = parse_xml(source)
        for query in ("//g/b[2]", "//g/b[position()>1]", "//g/b[position()=3]"):
            assert [m.order for m in stream_select(query, source)] == [
                n.order for n in api.select(query, document)
            ], query

    def test_sequential_predicates_filter_in_order(self):
        source = '<a><b x="1"/><b/><b x="2"/><b x="3"/></a>'
        document = parse_xml(source)
        query = "//b[@x][2]"
        assert [m.order for m in stream_select(query, source)] == [
            n.order for n in api.select(query, document)
        ]

    def test_empty_result_is_empty(self):
        assert stream_select("//zzz", RICH_XML) == []

    @pytest.mark.parametrize("query", ["/", "/ | //b", "//zzz | /"])
    def test_bare_root_path_streams(self, query):
        # "/" is a zero-step absolute path: its only match is the root.
        assert api.classify_query(query).streamable, query
        document = parse_xml(RICH_XML)
        assert [m.order for m in stream_select(query, RICH_XML)] == [
            node.order for node in api.select(query, document)
        ], query
        run = api.stream(query, RICH_XML)
        assert run.streamed is True and run.orders[0] == 0


# ----------------------------------------------------------------------
# Well-formedness: the scan mirrors parse_xml
# ----------------------------------------------------------------------
class TestStreamingWellFormedness:
    @pytest.mark.parametrize(
        "source",
        [
            "<a><b></a>",          # mismatched end tag
            "<a/><b/>",            # multiple document elements
            "text<a/>",            # character data outside the root
            "<a>",                 # unclosed element
            "</a>",                # end tag without start
            "<a x='1' x='2'/>",    # duplicate attribute
            "",                    # no document element
        ],
    )
    def test_raises_exactly_where_the_parser_does(self, source):
        with pytest.raises(XMLSyntaxError):
            parse_xml(source)
        with pytest.raises(XMLSyntaxError):
            stream_select("//b", source)


# ----------------------------------------------------------------------
# Resource limits at event granularity
# ----------------------------------------------------------------------
class TestStreamingLimits:
    def test_operation_budget_aborts_midstream(self):
        source = "<a>" + "<b/>" * 100 + "</a>"
        stats = EvaluationStats()
        with pytest.raises(ResourceLimitExceeded) as info:
            stream_select(
                "//b", source, limits=EvalLimits(max_operations=20), stats=stats
            )
        error = info.value
        assert error.limit == "max_operations"
        assert error.stats is stats
        # The scan stopped long before consuming all ~102 events.
        assert 0 < stats.total_work() <= 25

    def test_result_cap_aborts_on_the_excess_match(self):
        source = "<a>" + "<b/>" * 10 + "</a>"
        matches = []
        with pytest.raises(ResourceLimitExceeded) as info:
            for match in stream_matches(
                "//b", source, limits=EvalLimits(max_result_nodes=3)
            ):
                matches.append(match)
        assert info.value.limit == "max_result_nodes"
        assert len(matches) == 3  # the first three were delivered

    def test_timeout_enforced(self):
        source = "<a>" + "<b/>" * 2000 + "</a>"
        with pytest.raises(ResourceLimitExceeded) as info:
            stream_select(
                "//b", source, limits=EvalLimits(timeout_seconds=-1.0)
            )
        assert info.value.limit == "timeout_seconds"

    def test_unlimited_scan_counts_work(self):
        stats = EvaluationStats()
        stream_select("//b", "<a><b/><b/></a>", stats=stats)
        counters = stats.as_dict()
        assert counters["stream_events"] > 0
        assert counters["stream_matches"] == 2


# ----------------------------------------------------------------------
# Session wiring
# ----------------------------------------------------------------------
class TestSessionStream:
    def test_streamed_run(self):
        session = XPathSession()
        run = session.stream("//b[@x]", RICH_XML)
        assert isinstance(run, StreamRun)
        assert run.streamed is True
        assert run.orders == [m.order for m in run]
        assert run.plan.streamable
        assert session.stats.engine_use.get("streaming") == 1

    def test_fallback_run_matches_streamed_shape(self):
        session = XPathSession()
        streamed = session.stream("//b", RICH_XML)
        fallback = session.stream("//b[count(child::*) >= 0]", RICH_XML)
        assert fallback.streamed is False
        assert fallback.orders == streamed.orders
        assert [m.label for m in fallback] == [m.label for m in streamed]

    def test_require_raises_instead_of_falling_back(self):
        session = XPathSession()
        with pytest.raises(XPathEvaluationError, match="not streamable"):
            session.stream("//b[last()]", RICH_XML, require=True)

    def test_scalar_queries_rejected_before_any_parsing(self):
        session = XPathSession()
        with pytest.raises(XPathEvaluationError, match="node-set query"):
            session.stream("count(//b)", "<unparseable", require=False)

    def test_cache_hit_on_repeat(self):
        session = XPathSession()
        first = session.stream("//b", RICH_XML)
        second = session.stream("//b", RICH_XML)
        assert first.cache_hit is False and second.cache_hit is True
        assert first.plan is second.plan

    def test_limit_breach_recorded_as_failure(self):
        session = XPathSession()
        with pytest.raises(ResourceLimitExceeded):
            session.stream(
                "//b", RICH_XML, limits=EvalLimits(max_operations=1)
            )
        assert session.stats.limit_breaches == 1
        assert session.stats.errors == 1

    def test_module_level_stream(self):
        run = api.stream("//b", RICH_XML)
        assert run.streamed is True
        assert run.orders == [
            node.order for node in api.select("//b", parse_xml(RICH_XML))
        ]


# ----------------------------------------------------------------------
# Source collections (streamed batches)
# ----------------------------------------------------------------------
SOURCES = [
    RICH_XML,
    "<a><b/></a>",
    "<not well formed",
    "<a>no matches here</a>",
]


class TestSourceCollection:
    def test_streamed_and_tree_batches_agree(self):
        collection = api.stream_collection(SOURCES)
        streamed = collection.select("//b", stream=True)
        fallback = collection.select("//b", stream=False)
        assert streamed.streamed is True and fallback.streamed is False
        for left, right in zip(streamed, fallback):
            assert left.ok == right.ok
            if left.ok:
                assert left.matches == right.matches
            else:
                assert type(left.error) is type(right.error)

    def test_parse_failure_is_isolated(self):
        collection = api.stream_collection(SOURCES, names=list("wxyz"))
        batch = collection.select("//b", stream=True)
        assert [result.ok for result in batch] == [True, True, False, True]
        assert isinstance(batch[2].error, XMLSyntaxError)
        assert batch[2].name == "y"

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_matches_serial(self, backend):
        collection = api.stream_collection(SOURCES * 3)
        serial = collection.select("//b[@x]", stream=True)
        with ParallelExecutor(backend=backend, max_workers=2) as executor:
            parallel = collection.select("//b[@x]", stream=True, parallel=executor)
        assert [r.matches if r.ok else None for r in parallel] == [
            r.matches if r.ok else None for r in serial
        ]
        assert parallel.backend == backend

    def test_scalar_evaluate(self):
        collection = api.stream_collection(["<a><b/><b/></a>", "<a/>"])
        batch = collection.evaluate("count(//b)", stream=True)
        assert batch.streamed is False  # scalar queries cannot stream
        assert [result.value for result in batch] == [2.0, 0.0]

    def test_select_rejects_scalar_queries(self):
        collection = api.stream_collection(["<a/>"])
        batch = collection.select("count(//a)", stream=False)
        assert not batch[0].ok
        assert isinstance(batch[0].error, XPathEvaluationError)

    def test_session_bound_collection_records_stats(self):
        session = XPathSession()
        collection = session.stream_collection(["<a><b/></a>", "<a/>"])
        collection.select("//b", stream=True)
        assert session.stats.engine_use.get("streaming") == 2

    def test_env_default_controls_streaming(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_DEFAULT", "1")
        assert stream_by_default()
        collection = api.stream_collection(["<a><b/></a>"])
        assert collection.select("//b").streamed is True
        monkeypatch.delenv("REPRO_STREAM_DEFAULT")
        assert not stream_by_default()
        assert collection.select("//b").streamed is False

    def test_limit_breach_pattern_matches_tree_backend(self):
        # max_result_nodes is backend-independent: the breach pattern of a
        # streamed batch must equal the tree batch's exactly.
        sources = ["<a><b/><b/><b/></a>", "<a><b/></a>", "<a/>"]
        collection = api.stream_collection(sources)
        limits = EvalLimits(max_result_nodes=2)
        streamed = collection.select("//b", stream=True, limits=limits)
        fallback = collection.select("//b", stream=False, limits=limits)
        pattern = [
            type(r.error).__name__ if not r.ok else len(r.matches) for r in streamed
        ]
        assert pattern == [
            type(r.error).__name__ if not r.ok else len(r.matches) for r in fallback
        ]
        assert pattern[0] == "ResourceLimitExceeded"


# ----------------------------------------------------------------------
# StreamMatch ergonomics
# ----------------------------------------------------------------------
class TestStreamMatch:
    def test_labels(self):
        matches = {m.node_type: m for m in stream_select("//node()", RICH_XML)}
        assert matches[NodeType.ELEMENT].label in ("a", "b", "c")
        assert matches[NodeType.TEXT].label == "text"
        assert matches[NodeType.COMMENT].label == "comment"

    def test_from_node_round_trip(self):
        document = parse_xml("<a><b x='1'>t</b></a>")
        node = api.select("//@x", document)[0]
        match = StreamMatch.from_node(node)
        assert (match.order, match.name, match.value) == (node.order, "x", "1")
        root_match = StreamMatch.from_node(document.root)
        assert root_match.value is None and root_match.order == 0
