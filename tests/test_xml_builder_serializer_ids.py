"""Tests for the tree builder, the serialiser and the ref relation (§10.2)."""

from __future__ import annotations

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlmodel.builder import TreeBuilder, build_document
from repro.xmlmodel.ids import RefRelation, deref_ids, ref_relation_for
from repro.xmlmodel.nodes import Node, NodeType
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import escape_attribute, escape_text, serialize, serialize_node


class TestTreeBuilder:
    def test_simple_build(self):
        builder = TreeBuilder()
        builder.start("a")
        builder.element("b", text="hi")
        builder.end("a")
        doc = builder.finish()
        assert doc.document_element.name == "a"
        assert doc.document_element.children[0].string_value() == "hi"

    def test_mismatched_end_tag_rejected(self):
        builder = TreeBuilder()
        builder.start("a")
        with pytest.raises(XMLSyntaxError):
            builder.end("b")

    def test_unclosed_element_rejected_at_finish(self):
        builder = TreeBuilder()
        builder.start("a")
        builder.start("b")
        builder.end("b")
        with pytest.raises(XMLSyntaxError):
            builder.finish()

    def test_end_without_start_rejected(self):
        builder = TreeBuilder()
        with pytest.raises(XMLSyntaxError):
            builder.end("a")

    def test_zero_document_elements_rejected(self):
        builder = TreeBuilder()
        with pytest.raises(XMLSyntaxError):
            builder.finish()

    def test_empty_text_is_ignored(self):
        builder = TreeBuilder()
        builder.start("a")
        assert builder.text("") is None
        builder.end("a")
        assert builder.finish().document_element.children == ()

    def test_adjacent_text_nodes_merge(self):
        builder = TreeBuilder()
        builder.start("a")
        builder.text("one")
        builder.text("two")
        builder.end("a")
        doc = builder.finish()
        assert len(doc.document_element.children) == 1
        assert doc.document_element.string_value() == "onetwo"

    def test_builder_single_use(self):
        builder = TreeBuilder()
        builder.start("a")
        builder.end("a")
        builder.finish()
        with pytest.raises(RuntimeError):
            builder.start("again")

    def test_build_document_helper(self):
        doc = build_document("a", {"id": "1"}, ["text", ("b", {"x": "2"}, ["inner"])])
        assert doc.document_element.attribute_value("id") == "1"
        assert doc.document_element.string_value() == "textinner"

    def test_node_type_constraints(self):
        text = Node(NodeType.TEXT, value="x")
        with pytest.raises(ValueError):
            text.append_child(Node(NodeType.TEXT, value="y"))
        with pytest.raises(ValueError):
            Node(NodeType.TEXT, name="named", value="x")


class TestSerializer:
    def test_escape_text(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_attribute(self):
        assert escape_attribute('say "hi" & bye') == "say &quot;hi&quot; &amp; bye"

    def test_roundtrip_compact(self):
        source = '<a id="1"><b>x &amp; y</b><c/><!--note--><?pi data?></a>'
        doc = parse_xml(source)
        text = serialize(doc)
        reparsed = parse_xml(text)
        assert len(reparsed) == len(doc)
        assert reparsed.document_element.string_value() == doc.document_element.string_value()

    def test_declaration_option(self):
        doc = parse_xml("<a/>")
        assert serialize(doc, declaration=True).startswith("<?xml")

    def test_indentation(self):
        doc = parse_xml("<a><b><c/></b></a>")
        pretty = serialize(doc, indent=2)
        assert "\n  <b>" in pretty

    def test_serialize_single_node(self):
        doc = parse_xml("<a><b>x</b></a>")
        b = doc.document_element.children[0]
        assert serialize_node(b) == "<b>x</b>"

    def test_namespace_serialisation(self):
        doc = parse_xml('<a xmlns:p="urn:x"><p:b/></a>')
        assert 'xmlns:p="urn:x"' in serialize(doc)


class TestRefRelation:
    def test_paper_example_pairs(self, idref_doc):
        """ref = {(n1,n3),(n2,n1),(n3,n1),(n3,n2)} for the Theorem-10.7 document."""
        relation = RefRelation(idref_doc)
        pairs = {
            (source.attribute_value("id"), target.attribute_value("id"))
            for source, target in relation.pairs()
        }
        assert pairs == {("1", "3"), ("2", "1"), ("3", "1"), ("3", "2")}

    def test_id_axis(self, idref_doc):
        relation = RefRelation(idref_doc)
        n2 = idref_doc.element_by_id("2")
        result = relation.id_axis({n2})
        assert {node.attribute_value("id") for node in result} == {"1"}

    def test_id_axis_includes_descendant_references(self, idref_doc):
        relation = RefRelation(idref_doc)
        n1 = idref_doc.element_by_id("1")
        # descendant-or-self of n1 covers n2 and n3, whose text references 1, 2, 3.
        result = relation.id_axis({n1})
        assert {node.attribute_value("id") for node in result} == {"1", "2", "3"}

    def test_id_axis_inverse(self, idref_doc):
        relation = RefRelation(idref_doc)
        n1 = idref_doc.element_by_id("1")
        result = relation.id_axis_inverse({n1})
        # n2 and n3 reference 1; their ancestor-or-self closure adds n1 and the root.
        ids = {node.attribute_value("id") for node in result if node.is_element}
        assert ids == {"1", "2", "3"}

    def test_ref_relation_cached_per_document(self, idref_doc):
        assert ref_relation_for(idref_doc) is ref_relation_for(idref_doc)

    def test_deref_ids_function(self, figure8):
        nodes = deref_ids(figure8, "12 13")
        assert [node.attribute_value("id") for node in nodes] == ["12", "13"]

    def test_figure8_ref_relation(self, figure8):
        """In Figure 8 the c/d text happens to mention other ids (11..24)."""
        relation = ref_relation_for(figure8)
        c22 = figure8.element_by_id("22")
        targets = {node.attribute_value("id") for node in relation.referenced_from(c22)}
        assert targets == {"11", "12"}
