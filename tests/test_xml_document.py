"""Tests for the Document container: document order, indexes, IDs."""

from __future__ import annotations

import pytest

from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.nodes import NodeType
from repro.xmlmodel.parser import parse_xml


class TestDocumentOrder:
    def test_root_is_first(self, doc4):
        assert doc4.dom[0] is doc4.root
        assert doc4.root.order == 0

    def test_orders_are_consecutive(self, doc4):
        orders = [node.order for node in doc4.dom]
        assert orders == list(range(len(doc4)))

    def test_document_order_is_preorder(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        names = [node.name for node in doc.dom if node.is_element]
        assert names == ["a", "b", "c", "d"]

    def test_attributes_precede_children_in_document_order(self):
        doc = parse_xml('<a x="1"><b/></a>')
        a = doc.document_element
        attribute = a.attribute("x")
        child = a.children[0]
        assert a.order < attribute.order < child.order

    def test_namespaces_precede_attributes(self):
        doc = parse_xml('<a xmlns:p="u" x="1"/>')
        a = doc.document_element
        assert a.namespaces[0].order < a.attributes[0].order

    def test_comparison_operator_uses_order(self, doc4):
        a = doc4.document_element
        first_b, second_b = a.children[0], a.children[1]
        assert first_b < second_b
        assert not (second_b < first_b)

    def test_first_in_document_order(self, doc4):
        children = list(doc4.document_element.children)
        assert doc4.first_in_document_order(reversed(children)) is children[0]

    def test_sorted_by_document_order(self, doc4):
        children = list(doc4.document_element.children)
        assert doc4.sorted_by_document_order(reversed(children)) == children


class TestSiblingLinks:
    def test_first_child_and_next_sibling(self, doc4):
        a = doc4.document_element
        children = a.children
        assert a.first_child is children[0]
        assert children[0].next_sibling is children[1]
        assert children[-1].next_sibling is None

    def test_prev_sibling(self, doc4):
        children = doc4.document_element.children
        assert children[1].prev_sibling is children[0]
        assert children[0].prev_sibling is None

    def test_leaf_has_no_first_child(self, doc4):
        leaf = doc4.document_element.children[0]
        assert leaf.first_child is None


class TestNodeTestIndexes:
    def test_nodes_of_type_element(self, doc4):
        """T(element()) of Example 4.1: the document element plus four b's."""
        elements = doc4.nodes_of_type(NodeType.ELEMENT)
        assert len(elements) == 5

    def test_nodes_of_type_and_name(self, doc4):
        """T(element(b)) of Example 4.1."""
        bs = doc4.nodes_of_type_and_name(NodeType.ELEMENT, "b")
        assert len(bs) == 4
        assert all(node.name == "b" for node in bs)

    def test_nodes_of_type_root(self, doc4):
        assert doc4.nodes_of_type(NodeType.ROOT) == [doc4.root]

    def test_text_index(self, doc_prime3):
        texts = doc_prime3.nodes_of_type(NodeType.TEXT)
        assert len(texts) == 3
        assert all(node.value == "c" for node in texts)

    def test_attribute_index(self, figure8):
        attributes = figure8.nodes_of_type_and_name(NodeType.ATTRIBUTE, "id")
        # Figure 8 has nine elements (a, two b's, three c's, three d's), each
        # carrying an id attribute.
        assert len(attributes) == 9


class TestIds:
    def test_element_by_id(self, figure8):
        node = figure8.element_by_id("13")
        assert node is not None
        assert node.name == "c"

    def test_element_by_id_missing(self, figure8):
        assert figure8.element_by_id("nope") is None

    def test_deref_ids_whitespace_separated(self, figure8):
        nodes = figure8.deref_ids("14 24 nothere 14")
        assert [node.attribute_value("id") for node in nodes] == ["14", "24"]

    def test_deref_ids_returns_document_order(self, figure8):
        nodes = figure8.deref_ids("24 11")
        assert [node.attribute_value("id") for node in nodes] == ["11", "24"]

    def test_duplicate_ids_keep_first(self):
        doc = parse_xml('<a><b id="x">1</b><c id="x">2</c></a>')
        assert doc.element_by_id("x").name == "b"

    def test_custom_id_attribute(self):
        builder = TreeBuilder(id_attribute="key")
        builder.start("a", {"key": "root"})
        builder.element("b", {"key": "child"})
        builder.end("a")
        doc = builder.finish()
        assert doc.element_by_id("child").name == "b"


class TestContainerProtocol:
    def test_len_and_iteration(self, doc2):
        assert len(doc2) == len(list(doc2))

    def test_membership(self, doc2):
        assert doc2.document_element in doc2

    def test_dom_is_a_copy(self, doc2):
        dom = doc2.dom
        dom.pop()
        assert len(doc2.dom) == len(doc2)

    def test_unfrozen_document_rejects_queries(self):
        from repro.xmlmodel.document import Document
        from repro.xmlmodel.nodes import Node

        doc = Document(Node(NodeType.ROOT))
        with pytest.raises(RuntimeError):
            doc.dom
