"""Tests for the XML tokenizer (repro.xmlmodel.lexer)."""

from __future__ import annotations

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlmodel.lexer import XMLLexer, XMLTokenType, resolve_references


def tokens_of(text: str):
    return list(XMLLexer(text).tokens())


def kinds_of(text: str):
    return [token.kind for token in tokens_of(text)]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        assert kinds_of("") == [XMLTokenType.EOF]

    def test_simple_element(self):
        kinds = kinds_of("<a>text</a>")
        assert kinds == [
            XMLTokenType.START_TAG,
            XMLTokenType.TEXT,
            XMLTokenType.END_TAG,
            XMLTokenType.EOF,
        ]

    def test_empty_element_tag(self):
        (token, _eof) = tokens_of("<a/>")
        assert token.kind is XMLTokenType.EMPTY_TAG
        assert token.name == "a"

    def test_start_tag_name(self):
        token = tokens_of("<item>")[0]
        assert token.name == "item"

    def test_end_tag_name(self):
        token = tokens_of("</item>")[0]
        assert token.kind is XMLTokenType.END_TAG
        assert token.name == "item"

    def test_whitespace_inside_tag_is_tolerated(self):
        token = tokens_of("<a   id='1'   >")[0]
        assert token.attributes == [("id", "1")]

    def test_text_token_content(self):
        token = tokens_of("<a>hello world</a>")[1]
        assert token.data == "hello world"


class TestAttributes:
    def test_double_quoted_attribute(self):
        token = tokens_of('<a href="x.html">')[0]
        assert token.attributes == [("href", "x.html")]

    def test_single_quoted_attribute(self):
        token = tokens_of("<a href='x.html'>")[0]
        assert token.attributes == [("href", "x.html")]

    def test_multiple_attributes_preserve_order(self):
        token = tokens_of('<a x="1" y="2" z="3">')[0]
        assert [name for name, _ in token.attributes] == ["x", "y", "z"]

    def test_attribute_entity_references_resolved(self):
        token = tokens_of('<a title="a &amp; b">')[0]
        assert token.attributes == [("title", "a & b")]

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tokens_of("<a x=1>")

    def test_unterminated_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tokens_of('<a x="1>')


class TestSpecialConstructs:
    def test_comment(self):
        token = tokens_of("<!-- hi there -->")[0]
        assert token.kind is XMLTokenType.COMMENT
        assert token.data == " hi there "

    def test_unterminated_comment_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tokens_of("<!-- oops")

    def test_cdata_section(self):
        token = tokens_of("<![CDATA[<raw> & text]]>")[0]
        assert token.kind is XMLTokenType.CDATA
        assert token.data == "<raw> & text"

    def test_processing_instruction(self):
        token = tokens_of("<?php echo 1; ?>")[0]
        assert token.kind is XMLTokenType.PROCESSING_INSTRUCTION
        assert token.name == "php"
        assert token.data == "echo 1;"

    def test_xml_declaration_classified_separately(self):
        token = tokens_of('<?xml version="1.0"?>')[0]
        assert token.kind is XMLTokenType.DECLARATION

    def test_doctype_is_skipped_as_single_token(self):
        kinds = kinds_of("<!DOCTYPE html><a/>")
        assert kinds[0] is XMLTokenType.DOCTYPE
        assert kinds[1] is XMLTokenType.EMPTY_TAG


class TestEntityResolution:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("a &amp; b", "a & b"),
            ("&lt;tag&gt;", "<tag>"),
            ("&quot;q&quot;", '"q"'),
            ("&apos;a&apos;", "'a'"),
            ("&#65;&#66;", "AB"),
            ("&#x41;", "A"),
            ("no entities", "no entities"),
        ],
    )
    def test_references(self, raw, expected):
        assert resolve_references(raw) == expected

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            resolve_references("&bogus;")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            resolve_references("&amp")

    def test_text_entities_resolved_in_stream(self):
        token = tokens_of("<a>x &lt; y</a>")[1]
        assert token.data == "x < y"


class TestCharacterReferenceConformance:
    """ISSUE-7 bugfixes: malformed/out-of-range/illegal character references
    must raise positioned XMLSyntaxError, never a raw ValueError."""

    @pytest.mark.parametrize(
        "raw",
        ["&#xZZ;", "&#;", "&#x;", "&#12a;", "&#+65;", "&#-65;", "&#1_0;", "&#x 41;"],
    )
    def test_malformed_references_raise_xml_syntax_error(self, raw):
        with pytest.raises(XMLSyntaxError, match="malformed character reference"):
            resolve_references(raw)

    @pytest.mark.parametrize(
        "raw",
        [
            "&#x110000;",  # beyond Unicode
            "&#1114112;",
            "&#xFFFFFFFF;",  # far out of range (chr() would raise ValueError)
            "&#0;",
            "&#2;",  # control char outside the Char production
            "&#x1F;",
            "&#xD800;",  # surrogates
            "&#xDFFF;",
            "&#xFFFE;",  # non-characters excluded by the production
            "&#xFFFF;",
        ],
    )
    def test_non_xml_characters_rejected(self, raw):
        with pytest.raises(XMLSyntaxError, match="not a legal XML 1.0 character"):
            resolve_references(raw)

    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("&#x9;", "\t"),
            ("&#xA;", "\n"),
            ("&#xD;", "\r"),
            ("&#x20;", " "),
            ("&#xD7FF;", "퟿"),
            ("&#xE000;", ""),
            ("&#xFFFD;", "�"),
            ("&#x10000;", "\U00010000"),
            ("&#x10FFFF;", "\U0010ffff"),
            ("&#x1F600;", "\U0001f600"),
        ],
    )
    def test_boundary_characters_accepted(self, raw, expected):
        assert resolve_references(raw) == expected

    def test_lexer_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            tokens_of("<a>\n  &#xZZ;</a>")
        assert excinfo.value.line == 2

    def test_attribute_value_references_validated(self):
        with pytest.raises(XMLSyntaxError):
            tokens_of('<a x="&#2;">')

    def test_never_escapes_as_value_error(self):
        # The CLI/Collection isolation contract: parse failures stay inside
        # the ReproError hierarchy.
        for raw in ("&#xZZ;", "&#x110000;", "&#2;"):
            try:
                resolve_references(raw)
                assert False, f"{raw} accepted"
            except XMLSyntaxError:
                pass  # ValueError would propagate out of this except clause


def _first_text(tokens):
    return next(t.data for t in tokens if t.kind is XMLTokenType.TEXT)


class TestInternalSubsetEntities:
    """ISSUE-7 bugfix: DOCTYPE internal-subset general entities are
    registered (DBLP corpus shape) instead of lost with the subset."""

    DBLP = (
        "<!DOCTYPE dblp [\n"
        "  <!ELEMENT dblp (article)*>\n"
        '  <!ATTLIST article mdate CDATA #IMPLIED key CDATA "">\n'
        '  <!ENTITY uuml "&#252;">\n'
        '  <!ENTITY Author "M&uuml;ller">\n'
        '  <!ENTITY % param "never-expanded">\n'
        '  <!ENTITY ext SYSTEM "http://example.invalid/x.dtd">\n'
        "  <!NOTATION gif PUBLIC 'gif viewer'>\n"
        "  <?checker run?>\n"
        "  <!-- entities end here -->\n"
        "]>\n"
        "<dblp><article key='&uuml;'>by &Author;</article></dblp>"
    )

    def test_entities_resolved_in_text_and_attributes(self):
        tokens = tokens_of(self.DBLP)
        article = next(t for t in tokens if t.name == "article")
        assert article.attributes == [("key", "ü")]
        text = next(t for t in tokens if t.kind is XMLTokenType.TEXT and "by" in t.data)
        assert text.data == "by Müller"

    def test_parameter_and_external_entities_not_registered(self):
        with pytest.raises(XMLSyntaxError, match="unknown entity"):
            tokens_of("<!DOCTYPE a [<!ENTITY % p 'v'>]><a>&p;</a>")
        with pytest.raises(XMLSyntaxError, match="unknown entity"):
            tokens_of("<!DOCTYPE a [<!ENTITY e SYSTEM 'u'>]><a>&e;</a>")

    def test_first_declaration_wins(self):
        tokens = tokens_of(
            "<!DOCTYPE a [<!ENTITY e 'first'><!ENTITY e 'second'>]><a>&e;</a>"
        )
        assert _first_text(tokens) == "first"

    def test_quoted_gt_inside_declarations_is_tolerated(self):
        tokens = tokens_of(
            "<!DOCTYPE a PUBLIC '-//x//y>z//EN' 'http://e/x.dtd' ["
            "<!ENTITY e 'a > b'>]><a>&e;</a>"
        )
        assert _first_text(tokens) == "a > b"

    def test_recursive_expansion_depth_capped(self):
        with pytest.raises(XMLSyntaxError, match="nested more than"):
            tokens_of("<!DOCTYPE a [<!ENTITY x '&x;'>]><a>&x;</a>")

    def test_billion_laughs_size_capped(self):
        declarations = ["<!ENTITY lol0 'ha'>"]
        for i in range(1, 10):
            tenfold = f"&lol{i - 1};" * 10
            declarations.append(f"<!ENTITY lol{i} \"{tenfold}\">")
        bomb = f"<!DOCTYPE a [{''.join(declarations)}]><a>&lol9;</a>"
        with pytest.raises(XMLSyntaxError, match="entity expansion exceeds"):
            tokens_of(bomb)

    def test_entity_expanding_to_markup_rejected(self):
        with pytest.raises(XMLSyntaxError, match="expands to markup"):
            tokens_of("<!DOCTYPE a [<!ENTITY e '&lt;b/&gt;x<y'>]><a>&e;</a>")

    def test_unterminated_subset_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tokens_of("<!DOCTYPE a [<!ENTITY e 'v'>")
        with pytest.raises(XMLSyntaxError):
            tokens_of("<!DOCTYPE a [<!ENTITY e 'v")

    def test_entities_in_nested_references(self):
        tokens = tokens_of(
            "<!DOCTYPE a [<!ENTITY i '&#105;'><!ENTITY hi 'h&i;'>]><a>&hi;!</a>"
        )
        assert _first_text(tokens) == "hi!"


class TestReferenceFuzz:
    """Seeded fuzz of the character/entity-reference grammar: every
    generated document either round-trips through the parser with the
    expected string value or fails inside the ReproError hierarchy."""

    def test_valid_reference_fuzz_round_trips(self):
        import random

        from repro.xmlmodel.parser import parse_xml

        rng = random.Random(20260807)
        legal_points = (
            [0x9, 0xA, 0x20, 0x41, 0xD7FF, 0xE000, 0xFFFD, 0x10000, 0x10FFFF]
            + [rng.randrange(0x20, 0xD7FF) for _ in range(30)]
            + [rng.randrange(0x10000, 0x10FFFF) for _ in range(10)]
        )
        for code_point in legal_points:
            ref = f"&#{code_point};" if rng.random() < 0.5 else f"&#x{code_point:x};"
            document = parse_xml(f"<a name='p{ref}s'>t{ref}</a>")
            expected = chr(code_point)
            assert document.root.string_value() == f"t{expected}"
            element = document.root.first_child
            assert element.attribute_value("name") == f"p{expected}s"

    def test_invalid_reference_fuzz_rejected_in_hierarchy(self):
        import random

        from repro.errors import ReproError
        from repro.xmlmodel.parser import parse_xml

        rng = random.Random(20260808)
        cases = []
        for _ in range(40):
            roll = rng.random()
            if roll < 0.25:
                cases.append(f"&#{rng.randrange(0x110000, 0x7FFFFFFF)};")
            elif roll < 0.5:
                cases.append(f"&#xD{rng.randrange(0x800, 0xFFF):03X};")  # surrogate
            elif roll < 0.75:
                junk = "".join(rng.choice("zq!#%&*") for _ in range(rng.randint(1, 4)))
                cases.append(f"&#{junk};")
            else:
                name = "".join(rng.choice("abcdef") for _ in range(rng.randint(3, 8)))
                cases.append(f"&{name};")  # undeclared entity
        for reference in cases:
            with pytest.raises(ReproError):
                parse_xml(f"<a>{reference}</a>")


class TestPositions:
    def test_line_and_column_tracking(self):
        text = "<a>\n  <b/>\n</a>"
        b_token = tokens_of(text)[2]
        assert b_token.name == "b"
        assert b_token.line == 2
        assert b_token.column == 3

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            tokens_of("<a x=1>")
        assert excinfo.value.line == 1
