"""Tests for the XML tokenizer (repro.xmlmodel.lexer)."""

from __future__ import annotations

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlmodel.lexer import XMLLexer, XMLTokenType, resolve_references


def tokens_of(text: str):
    return list(XMLLexer(text).tokens())


def kinds_of(text: str):
    return [token.kind for token in tokens_of(text)]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        assert kinds_of("") == [XMLTokenType.EOF]

    def test_simple_element(self):
        kinds = kinds_of("<a>text</a>")
        assert kinds == [
            XMLTokenType.START_TAG,
            XMLTokenType.TEXT,
            XMLTokenType.END_TAG,
            XMLTokenType.EOF,
        ]

    def test_empty_element_tag(self):
        (token, _eof) = tokens_of("<a/>")
        assert token.kind is XMLTokenType.EMPTY_TAG
        assert token.name == "a"

    def test_start_tag_name(self):
        token = tokens_of("<item>")[0]
        assert token.name == "item"

    def test_end_tag_name(self):
        token = tokens_of("</item>")[0]
        assert token.kind is XMLTokenType.END_TAG
        assert token.name == "item"

    def test_whitespace_inside_tag_is_tolerated(self):
        token = tokens_of("<a   id='1'   >")[0]
        assert token.attributes == [("id", "1")]

    def test_text_token_content(self):
        token = tokens_of("<a>hello world</a>")[1]
        assert token.data == "hello world"


class TestAttributes:
    def test_double_quoted_attribute(self):
        token = tokens_of('<a href="x.html">')[0]
        assert token.attributes == [("href", "x.html")]

    def test_single_quoted_attribute(self):
        token = tokens_of("<a href='x.html'>")[0]
        assert token.attributes == [("href", "x.html")]

    def test_multiple_attributes_preserve_order(self):
        token = tokens_of('<a x="1" y="2" z="3">')[0]
        assert [name for name, _ in token.attributes] == ["x", "y", "z"]

    def test_attribute_entity_references_resolved(self):
        token = tokens_of('<a title="a &amp; b">')[0]
        assert token.attributes == [("title", "a & b")]

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tokens_of("<a x=1>")

    def test_unterminated_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tokens_of('<a x="1>')


class TestSpecialConstructs:
    def test_comment(self):
        token = tokens_of("<!-- hi there -->")[0]
        assert token.kind is XMLTokenType.COMMENT
        assert token.data == " hi there "

    def test_unterminated_comment_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tokens_of("<!-- oops")

    def test_cdata_section(self):
        token = tokens_of("<![CDATA[<raw> & text]]>")[0]
        assert token.kind is XMLTokenType.CDATA
        assert token.data == "<raw> & text"

    def test_processing_instruction(self):
        token = tokens_of("<?php echo 1; ?>")[0]
        assert token.kind is XMLTokenType.PROCESSING_INSTRUCTION
        assert token.name == "php"
        assert token.data == "echo 1;"

    def test_xml_declaration_classified_separately(self):
        token = tokens_of('<?xml version="1.0"?>')[0]
        assert token.kind is XMLTokenType.DECLARATION

    def test_doctype_is_skipped_as_single_token(self):
        kinds = kinds_of("<!DOCTYPE html><a/>")
        assert kinds[0] is XMLTokenType.DOCTYPE
        assert kinds[1] is XMLTokenType.EMPTY_TAG


class TestEntityResolution:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("a &amp; b", "a & b"),
            ("&lt;tag&gt;", "<tag>"),
            ("&quot;q&quot;", '"q"'),
            ("&apos;a&apos;", "'a'"),
            ("&#65;&#66;", "AB"),
            ("&#x41;", "A"),
            ("no entities", "no entities"),
        ],
    )
    def test_references(self, raw, expected):
        assert resolve_references(raw) == expected

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            resolve_references("&bogus;")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            resolve_references("&amp")

    def test_text_entities_resolved_in_stream(self):
        token = tokens_of("<a>x &lt; y</a>")[1]
        assert token.data == "x < y"


class TestPositions:
    def test_line_and_column_tracking(self):
        text = "<a>\n  <b/>\n</a>"
        b_token = tokens_of(text)[2]
        assert b_token.name == "b"
        assert b_token.line == 2
        assert b_token.column == 3

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            tokens_of("<a x=1>")
        assert excinfo.value.line == 1
