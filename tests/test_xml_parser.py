"""Tests for the XML parser and the resulting documents."""

from __future__ import annotations

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlmodel.nodes import NodeType
from repro.xmlmodel.parser import parse_xml


class TestWellFormedDocuments:
    def test_single_element(self):
        doc = parse_xml("<a/>")
        assert doc.document_element.name == "a"
        assert len(doc) == 2  # root + a

    def test_doc2_matches_paper_node_count(self):
        """DOC(i) contains i + 1 element nodes (paper Section 2)."""
        doc = parse_xml("<a><b/><b/></a>")
        elements = doc.nodes_of_type(NodeType.ELEMENT)
        assert len(elements) == 3

    def test_nested_elements(self):
        doc = parse_xml("<a><b><c/></b></a>")
        a = doc.document_element
        assert [child.name for child in a.children] == ["b"]
        assert [child.name for child in a.children[0].children] == ["c"]

    def test_text_nodes(self):
        doc = parse_xml("<a>hello</a>")
        a = doc.document_element
        assert a.children[0].node_type is NodeType.TEXT
        assert a.children[0].value == "hello"

    def test_mixed_content_order(self):
        doc = parse_xml("<a>one<b/>two</a>")
        kinds = [child.node_type for child in doc.document_element.children]
        assert kinds == [NodeType.TEXT, NodeType.ELEMENT, NodeType.TEXT]

    def test_attributes(self):
        doc = parse_xml('<a x="1" y="2"/>')
        a = doc.document_element
        assert a.attribute_value("x") == "1"
        assert a.attribute_value("y") == "2"
        assert a.attribute_value("missing") is None

    def test_comments_and_pis_are_nodes(self):
        doc = parse_xml("<a><!--note--><?pi data?></a>")
        children = doc.document_element.children
        assert children[0].node_type is NodeType.COMMENT
        assert children[1].node_type is NodeType.PROCESSING_INSTRUCTION
        assert children[1].name == "pi"

    def test_cdata_becomes_text(self):
        doc = parse_xml("<a><![CDATA[<not-a-tag>]]></a>")
        child = doc.document_element.children[0]
        assert child.node_type is NodeType.TEXT
        assert child.value == "<not-a-tag>"

    def test_adjacent_text_merged(self):
        doc = parse_xml("<a>one<![CDATA[two]]>three</a>")
        children = doc.document_element.children
        assert len(children) == 1
        assert children[0].value == "onetwothree"

    def test_namespace_declarations_become_namespace_nodes(self):
        doc = parse_xml('<a xmlns:x="http://example.org/x"><x:b/></a>')
        a = doc.document_element
        assert len(a.namespaces) == 1
        assert a.namespaces[0].name == "x"
        assert a.namespaces[0].value == "http://example.org/x"

    def test_xml_declaration_and_doctype_ignored(self):
        doc = parse_xml('<?xml version="1.0"?><!DOCTYPE a><a/>')
        assert doc.document_element.name == "a"

    def test_whitespace_stripping_option(self):
        text = "<a>\n  <b/>\n  <b/>\n</a>"
        kept = parse_xml(text)
        stripped = parse_xml(text, strip_whitespace=True)
        assert len(kept) > len(stripped)
        assert len(stripped.document_element.children) == 2

    def test_entity_references_in_text(self):
        doc = parse_xml("<a>x &amp; y</a>")
        assert doc.document_element.string_value() == "x & y"


class TestMalformedDocuments:
    @pytest.mark.parametrize(
        "text",
        [
            "<a>",  # unclosed element
            "<a></b>",  # mismatched end tag
            "<a/><b/>",  # two document elements
            "</a>",  # end tag without start
            "<a><b></a></b>",  # crossing tags
            "text only",  # character data outside the document element
            '<a x="1" x="2"/>',  # duplicate attribute
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(XMLSyntaxError):
            parse_xml(text)

    def test_error_reports_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse_xml("<a>\n<b x=1/></a>")
        assert "line 2" in str(excinfo.value)


class TestStringValues:
    def test_element_string_value_concatenates_descendant_text(self):
        doc = parse_xml("<a>one<b>two<c>three</c></b>four</a>")
        assert doc.document_element.string_value() == "onetwothreefour"

    def test_root_string_value(self):
        doc = parse_xml("<a>x<b>y</b></a>")
        assert doc.root.string_value() == "xy"

    def test_attribute_string_value(self):
        doc = parse_xml('<a name="value"/>')
        attr = doc.document_element.attribute("name")
        assert attr.string_value() == "value"

    def test_attribute_text_not_in_element_string_value(self):
        doc = parse_xml('<a name="hidden">shown</a>')
        assert doc.document_element.string_value() == "shown"

    def test_figure8_string_values(self, figure8):
        """String values of the Figure-8 document match the E10 table (Example 8.1)."""
        by_id = {node.attribute_value("id"): node for node in figure8.dom if node.is_element}
        assert by_id["11"].string_value() == "21 2223 24100"
        assert by_id["12"].string_value() == "21 22"
        assert by_id["14"].string_value() == "100"
