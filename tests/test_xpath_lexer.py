"""Tests for the XPath tokenizer, including the operator disambiguation rule."""

from __future__ import annotations

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.lexer import TokenType, tokenize


def kinds(text: str):
    return [token.kind for token in tokenize(text)][:-1]  # drop EOF


def texts(text: str):
    return [token.text for token in tokenize(text)][:-1]


class TestBasicTokens:
    def test_simple_path(self):
        assert kinds("/a/b") == [
            TokenType.SLASH,
            TokenType.NAME,
            TokenType.SLASH,
            TokenType.NAME,
        ]

    def test_double_slash(self):
        assert kinds("//a")[0] is TokenType.DOUBLE_SLASH

    def test_axis_syntax(self):
        assert kinds("child::a") == [TokenType.NAME, TokenType.COLONCOLON, TokenType.NAME]

    def test_abbreviations(self):
        assert kinds(".") == [TokenType.DOT]
        assert kinds("..") == [TokenType.DOTDOT]
        assert kinds("@href") == [TokenType.AT, TokenType.NAME]

    def test_number_tokens(self):
        assert [t.text for t in tokenize("3.14")[:-1]] == ["3.14"]
        assert tokenize("42")[0].number_value == 42.0
        assert tokenize(".5")[0].kind is TokenType.NUMBER

    def test_string_literals(self):
        assert tokenize("'hello'")[0].text == "hello"
        assert tokenize('"hi there"')[0].text == "hi there"

    def test_unterminated_literal(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("'oops")

    def test_variable_reference(self):
        token = tokenize("$var")[0]
        assert token.kind is TokenType.VARIABLE
        assert token.text == "var"

    def test_variable_requires_name(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("$ ")

    def test_comparison_operators(self):
        assert kinds("a != b") == [TokenType.NAME, TokenType.NEQ, TokenType.NAME]
        assert kinds("a <= b")[1] is TokenType.LE
        assert kinds("a >= b")[1] is TokenType.GE
        assert kinds("a < b")[1] is TokenType.LT

    def test_qname(self):
        assert texts("ns:local") == ["ns:local"]
        assert texts("ns:*") == ["ns:*"]

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a # b")


class TestDisambiguation:
    """The XPath 3.7 rule: '*' and and/or/div/mod read as operators only after
    an operand-ending token."""

    def test_star_as_wildcard_at_start(self):
        assert kinds("*")[0] is TokenType.STAR

    def test_star_as_wildcard_after_slash(self):
        assert kinds("/*")[1] is TokenType.STAR

    def test_star_as_wildcard_after_axis(self):
        assert kinds("child::*")[2] is TokenType.STAR

    def test_star_as_multiplication_after_operand(self):
        assert kinds("2 * 3")[1] is TokenType.MULTIPLY
        assert kinds("last() * 0.5")[3] is TokenType.MULTIPLY

    def test_and_as_name_at_start(self):
        assert kinds("and")[0] is TokenType.NAME

    def test_and_as_operator_after_operand(self):
        assert kinds("a and b")[1] is TokenType.OPERATOR_NAME

    def test_div_mod_operators(self):
        assert kinds("4 div 2")[1] is TokenType.OPERATOR_NAME
        assert kinds("4 mod 2")[1] is TokenType.OPERATOR_NAME

    def test_div_as_element_name_after_slash(self):
        assert kinds("/div")[1] is TokenType.NAME

    def test_star_after_bracket_is_wildcard(self):
        result = kinds("a[*]")
        assert result[2] is TokenType.STAR

    def test_operator_after_rparen(self):
        result = kinds("(a) and (b)")
        assert TokenType.OPERATOR_NAME in result


class TestPaperQueries:
    """The exact query strings used in the paper tokenize cleanly."""

    @pytest.mark.parametrize(
        "query",
        [
            "//a/b/parent::a/b/parent::a/b",
            "//*[parent::a/child::* = 'c']",
            "//a/b[count(parent::a/b) > 1]",
            "//a//b[ancestor::a//b[ancestor::a//b]/ancestor::a//b]/ancestor::a//b",
            "count(//b/following::b/following::b)",
            "descendant::b/following-sibling::*[position() != last()]",
            "/descendant::a[count(descendant::b/child::c) + position() < last()]/child::d",
            "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]",
            "/descendant::a/child::b[child::c/child::d or not(following::*)]",
        ],
    )
    def test_tokenizes(self, query):
        tokens = tokenize(query)
        assert tokens[-1].kind is TokenType.EOF
        assert len(tokens) > 3
