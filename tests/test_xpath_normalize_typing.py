"""Tests for normalisation (unabbreviated form) and static typing."""

from __future__ import annotations

import pytest

from repro.errors import XPathTypeError
from repro.xpath.ast import (
    BinaryOp,
    ContextFunction,
    FunctionCall,
    LocationPath,
    NumberLiteral,
    walk,
)
from repro.xpath.normalize import compile_query, normalize
from repro.xpath.parser import parse_xpath
from repro.xpath.typing import check_function_call, static_type
from repro.xpath.values import ValueType


class TestPositionalPredicateRewrite:
    def test_numeric_literal_predicate(self):
        """The paper's example: //a[5] means //a[position() = 5]."""
        query = compile_query("//a[5]")
        predicate = query.steps[-1].predicates[0]
        assert isinstance(predicate, BinaryOp) and predicate.op == "="
        assert isinstance(predicate.left, ContextFunction)
        assert predicate.left.name == "position"
        assert isinstance(predicate.right, NumberLiteral)

    def test_numeric_expression_predicate(self):
        query = compile_query("a[last() - 1]")
        predicate = query.steps[0].predicates[0]
        assert isinstance(predicate, BinaryOp) and predicate.op == "="
        assert predicate.left.name == "position"

    def test_boolean_predicate_untouched(self):
        query = compile_query("a[b]")
        predicate = query.steps[0].predicates[0]
        assert isinstance(predicate, LocationPath)

    def test_filter_expression_predicates_rewritten(self):
        query = compile_query("(//a)[2]")
        predicate = query.predicates[0]
        assert isinstance(predicate, BinaryOp)
        assert predicate.left.name == "position"

    def test_nested_predicates_rewritten(self):
        query = compile_query("a[b[2]]")
        outer = query.steps[0].predicates[0]
        inner = outer.steps[0].predicates[0]
        assert isinstance(inner, BinaryOp)


class TestFunctionNormalisation:
    def test_zero_arg_string_length_gets_string_argument(self):
        query = compile_query("a[string-length() > 2]")
        call = query.steps[0].predicates[0].left
        assert isinstance(call, FunctionCall)
        assert isinstance(call.args[0], ContextFunction)
        assert call.args[0].name == "string"

    def test_zero_arg_normalize_space(self):
        query = compile_query("normalize-space()")
        assert isinstance(query.args[0], ContextFunction)

    def test_lang_rewritten_to_internal_form(self):
        query = compile_query("a[lang('en')]")
        call = query.steps[0].predicates[0]
        assert isinstance(call, FunctionCall) and call.name == "__lang__"
        assert isinstance(call.args[0], LocationPath)

    def test_unknown_function_rejected(self):
        with pytest.raises(XPathTypeError):
            compile_query("frobnicate(3)")

    def test_wrong_arity_rejected(self):
        with pytest.raises(XPathTypeError):
            compile_query("count()")
        with pytest.raises(XPathTypeError):
            compile_query("count(a, b)")
        with pytest.raises(XPathTypeError):
            compile_query("concat('a')")

    def test_normalisation_is_pure(self):
        original = parse_xpath("//a[5]")
        before = original.to_xpath()
        normalize(original)
        assert original.to_xpath() == before

    def test_compile_query_accepts_ast(self):
        ast = parse_xpath("//a")
        assert compile_query(ast).to_xpath() == compile_query("//a").to_xpath()

    def test_normalisation_idempotent(self):
        once = compile_query("//a[5][string-length() > 1]")
        twice = normalize(once)
        assert once.to_xpath() == twice.to_xpath()


class TestStaticTyping:
    @pytest.mark.parametrize(
        "query, expected",
        [
            ("3", ValueType.NUMBER),
            ("'x'", ValueType.STRING),
            ("position()", ValueType.NUMBER),
            ("string()", ValueType.STRING),
            ("count(//a)", ValueType.NUMBER),
            ("//a", ValueType.NODE_SET),
            ("//a | //b", ValueType.NODE_SET),
            ("id('x')", ValueType.NODE_SET),
            ("id('x')/a", ValueType.NODE_SET),
            ("(//a)[1]", ValueType.NODE_SET),
            ("//a = 3", ValueType.BOOLEAN),
            ("1 + 2", ValueType.NUMBER),
            ("not(//a)", ValueType.BOOLEAN),
            ("concat('a', 'b')", ValueType.STRING),
            ("-(//a)", ValueType.NUMBER),
            ("$v", ValueType.UNKNOWN),
            ("true()", ValueType.BOOLEAN),
        ],
    )
    def test_types(self, query, expected):
        assert static_type(compile_query(query)) is expected

    def test_every_subexpression_has_a_type(self):
        query = compile_query(
            "/descendant::a[count(descendant::b/child::c) + position() < last()]/child::d"
        )
        for node in walk(query):
            assert static_type(node) in ValueType

    def test_check_function_call_unknown(self):
        with pytest.raises(XPathTypeError):
            check_function_call(FunctionCall("bogus", []))
