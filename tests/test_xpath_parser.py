"""Tests for the XPath parser: grammar coverage and abbreviation expansion."""

from __future__ import annotations

import pytest

from repro.axes.nodetests import KindTest, NameTest
from repro.axes.regex import Axis
from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    BinaryOp,
    ContextFunction,
    FilterExpr,
    FunctionCall,
    LocationPath,
    Negate,
    NumberLiteral,
    PathExpr,
    StringLiteral,
    UnionExpr,
    VariableReference,
    walk,
)
from repro.xpath.parser import parse_xpath


class TestLocationPaths:
    def test_relative_child_steps(self):
        path = parse_xpath("a/b")
        assert isinstance(path, LocationPath)
        assert not path.absolute
        assert [step.axis for step in path.steps] == [Axis.CHILD, Axis.CHILD]
        assert [step.node_test.name for step in path.steps] == ["a", "b"]

    def test_absolute_path(self):
        path = parse_xpath("/a")
        assert path.absolute
        assert len(path.steps) == 1

    def test_root_only(self):
        path = parse_xpath("/")
        assert path.absolute
        assert path.steps == ()

    def test_double_slash_expansion(self):
        path = parse_xpath("//a")
        assert path.absolute
        assert path.steps[0].axis is Axis.DESCENDANT_OR_SELF
        assert isinstance(path.steps[0].node_test, KindTest)
        assert path.steps[1].axis is Axis.CHILD

    def test_inner_double_slash_expansion(self):
        path = parse_xpath("a//b")
        assert [step.axis for step in path.steps] == [
            Axis.CHILD,
            Axis.DESCENDANT_OR_SELF,
            Axis.CHILD,
        ]

    def test_dot_and_dotdot(self):
        path = parse_xpath("./..")
        assert [step.axis for step in path.steps] == [Axis.SELF, Axis.PARENT]
        assert all(isinstance(step.node_test, KindTest) for step in path.steps)

    def test_attribute_abbreviation(self):
        path = parse_xpath("a/@href")
        assert path.steps[1].axis is Axis.ATTRIBUTE
        assert path.steps[1].node_test.name == "href"

    def test_explicit_axes(self):
        path = parse_xpath("ancestor-or-self::node()/following-sibling::*")
        assert path.steps[0].axis is Axis.ANCESTOR_OR_SELF
        assert path.steps[1].axis is Axis.FOLLOWING_SIBLING
        assert isinstance(path.steps[1].node_test, NameTest)
        assert path.steps[1].node_test.is_wildcard()

    def test_node_type_tests(self):
        path = parse_xpath("text()/comment()/processing-instruction('x')/node()")
        kinds = [step.node_test.kind for step in path.steps]
        assert kinds == ["text", "comment", "processing-instruction", "node"]
        assert path.steps[2].node_test.target == "x"

    def test_predicates_attach_to_steps(self):
        path = parse_xpath("a[b][c]/d")
        assert len(path.steps[0].predicates) == 2
        assert len(path.steps[1].predicates) == 0

    def test_wildcard(self):
        path = parse_xpath("*")
        assert path.steps[0].node_test.is_wildcard()


class TestExpressions:
    def test_precedence_or_and(self):
        expr = parse_xpath("a or b and c")
        assert isinstance(expr, BinaryOp) and expr.op == "or"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "and"

    def test_precedence_comparison_vs_arithmetic(self):
        expr = parse_xpath("1 + 2 < 3 * 4")
        assert expr.op == "<"
        assert expr.left.op == "+"
        assert expr.right.op == "*"

    def test_equality_chain_left_associative(self):
        expr = parse_xpath("1 = 2 != 3")
        assert expr.op == "!="
        assert expr.left.op == "="

    def test_unary_minus(self):
        expr = parse_xpath("-3 + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, Negate)

    def test_union(self):
        expr = parse_xpath("a | b | c")
        assert isinstance(expr, UnionExpr)
        assert isinstance(expr.left, UnionExpr)

    def test_literals(self):
        assert isinstance(parse_xpath("'s'"), StringLiteral)
        assert isinstance(parse_xpath("3.5"), NumberLiteral)
        assert parse_xpath("3.5").value == 3.5

    def test_variable(self):
        expr = parse_xpath("$x + 1")
        assert isinstance(expr.left, VariableReference)
        assert expr.left.name == "x"

    def test_function_call(self):
        expr = parse_xpath("concat('a', 'b', 'c')")
        assert isinstance(expr, FunctionCall)
        assert len(expr.args) == 3

    def test_context_primitives(self):
        assert isinstance(parse_xpath("position()"), ContextFunction)
        assert isinstance(parse_xpath("last()"), ContextFunction)
        assert isinstance(parse_xpath("string()"), ContextFunction)

    def test_zero_arg_true_false_stay_function_calls(self):
        assert isinstance(parse_xpath("true()"), FunctionCall)

    def test_parenthesised_expression(self):
        expr = parse_xpath("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_div_mod(self):
        assert parse_xpath("6 div 2").op == "div"
        assert parse_xpath("6 mod 4").op == "mod"


class TestFilterAndPathExpressions:
    def test_filter_expression_with_predicate(self):
        expr = parse_xpath("(//a)[1]")
        assert isinstance(expr, FilterExpr)
        assert isinstance(expr.primary, LocationPath)

    def test_function_call_followed_by_path(self):
        expr = parse_xpath("id('x')/b")
        assert isinstance(expr, PathExpr)
        assert isinstance(expr.start, FunctionCall)
        assert expr.path.steps[0].node_test.name == "b"

    def test_filter_with_double_slash_continuation(self):
        expr = parse_xpath("id('x')//b")
        assert isinstance(expr, PathExpr)
        assert expr.path.steps[0].axis is Axis.DESCENDANT_OR_SELF

    def test_parenthesised_path_without_predicate_collapses(self):
        expr = parse_xpath("(a/b)")
        assert isinstance(expr, LocationPath)

    def test_node_type_name_is_not_a_function_call(self):
        expr = parse_xpath("text()")
        assert isinstance(expr, LocationPath)
        assert isinstance(expr.steps[0].node_test, KindTest)


class TestErrors:
    @pytest.mark.parametrize(
        "query",
        [
            "",  # empty
            "a b",  # trailing garbage
            "a[",  # unterminated predicate
            "child::",  # missing node test
            "f(1,",  # unterminated call
            "/..../",  # nonsense
            "a/",  # dangling slash
            "1 +",  # missing operand
        ],
    )
    def test_rejected(self, query):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(query)


class TestPaperQueries:
    @pytest.mark.parametrize(
        "query, expected_steps",
        [
            ("//a/b", 3),
            ("//a/b/parent::a/b", 5),
            ("/descendant::a/child::d", 2),
        ],
    )
    def test_step_counts(self, query, expected_steps):
        path = parse_xpath(query)
        assert isinstance(path, LocationPath)
        assert len(path.steps) == expected_steps

    def test_experiment3_query_structure(self):
        expr = parse_xpath("//a/b[count(parent::a/b) > 1]")
        predicate = expr.steps[-1].predicates[0]
        assert isinstance(predicate, BinaryOp) and predicate.op == ">"
        assert isinstance(predicate.left, FunctionCall)
        assert predicate.left.name == "count"

    def test_roundtrip_to_xpath_is_reparseable(self):
        queries = [
            "//a/b[count(parent::a/b) > 1]",
            "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]",
            "descendant::b/following-sibling::*[position() != last()]",
        ]
        for query in queries:
            ast = parse_xpath(query)
            rendered = ast.to_xpath()
            reparsed = parse_xpath(rendered)
            assert type(reparsed) is type(ast)
            assert len(list(walk(reparsed))) == len(list(walk(ast)))
