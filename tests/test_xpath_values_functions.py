"""Tests for the XPath value system and the F[[Op]] function library (Table II)."""

from __future__ import annotations

import math

import pytest

from repro.errors import XPathTypeError
from repro.xmlmodel.parser import parse_xml
from repro.xpath.context import StaticContext
from repro.xpath.functions import FunctionLibrary
from repro.xpath.values import (
    NodeSet,
    ValueType,
    format_number,
    predicate_truth,
    to_boolean,
    to_number,
    to_string,
    value_type,
)


@pytest.fixture
def library(figure8):
    return FunctionLibrary(StaticContext(figure8))


def node_set(document, *ids):
    return NodeSet(document.element_by_id(identifier) for identifier in ids)


class TestConversions:
    def test_value_types(self, figure8):
        assert value_type(1.0) is ValueType.NUMBER
        assert value_type(True) is ValueType.BOOLEAN
        assert value_type("x") is ValueType.STRING
        assert value_type(NodeSet()) is ValueType.NODE_SET

    def test_to_number(self):
        assert to_number("  42 ") == 42.0
        assert to_number("3.5") == 3.5
        assert math.isnan(to_number("abc"))
        assert math.isnan(to_number(""))
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0

    def test_to_number_of_node_set_uses_first_node(self, figure8):
        nodes = node_set(figure8, "14", "24")
        assert to_number(nodes) == 100.0

    def test_to_string_of_numbers(self):
        assert to_string(5.0) == "5"
        assert to_string(-5.0) == "-5"
        assert to_string(0.5) == "0.5"
        assert to_string(float("nan")) == "NaN"
        assert to_string(float("inf")) == "Infinity"
        assert to_string(float("-inf")) == "-Infinity"
        assert to_string(0.0) == "0"

    def test_format_number_large_integer(self):
        assert format_number(1e15) == "1000000000000000"

    def test_to_string_of_booleans(self):
        assert to_string(True) == "true"
        assert to_string(False) == "false"

    def test_to_string_of_node_set(self, figure8):
        assert to_string(node_set(figure8, "24", "14")) == "100"
        assert to_string(NodeSet()) == ""

    def test_to_boolean(self, figure8):
        assert to_boolean(1.0) is True
        assert to_boolean(0.0) is False
        assert to_boolean(float("nan")) is False
        assert to_boolean("x") is True
        assert to_boolean("") is False
        assert to_boolean(node_set(figure8, "14")) is True
        assert to_boolean(NodeSet()) is False

    def test_predicate_truth(self):
        assert predicate_truth(3.0, 3) is True
        assert predicate_truth(3.0, 2) is False
        assert predicate_truth(True, 7) is True
        assert predicate_truth("", 1) is False


class TestNodeSet:
    def test_document_order_iteration(self, figure8):
        nodes = node_set(figure8, "24", "11", "14")
        assert [n.attribute_value("id") for n in nodes] == ["11", "14", "24"]

    def test_first(self, figure8):
        assert node_set(figure8, "23", "12").first().attribute_value("id") == "12"
        assert NodeSet().first() is None

    def test_set_algebra(self, figure8):
        left = node_set(figure8, "11", "12")
        right = node_set(figure8, "12", "13")
        assert len(left | right) == 3
        assert len(left & right) == 1
        assert len(left - right) == 1

    def test_equality_and_hash(self, figure8):
        assert node_set(figure8, "11") == node_set(figure8, "11")
        assert hash(node_set(figure8, "11")) == hash(node_set(figure8, "11"))

    def test_contains(self, figure8):
        nodes = node_set(figure8, "11")
        assert figure8.element_by_id("11") in nodes
        assert figure8.element_by_id("12") not in nodes


class TestArithmetic:
    def test_basic_operations(self, library):
        assert library.binary("+", 2.0, 3.0) == 5.0
        assert library.binary("-", 2.0, 3.0) == -1.0
        assert library.binary("*", 2.0, 3.0) == 6.0
        assert library.binary("div", 7.0, 2.0) == 3.5

    def test_division_by_zero(self, library):
        assert library.binary("div", 1.0, 0.0) == math.inf
        assert library.binary("div", -1.0, 0.0) == -math.inf
        assert math.isnan(library.binary("div", 0.0, 0.0))

    def test_mod_follows_dividend_sign(self, library):
        assert library.binary("mod", 5.0, 2.0) == 1.0
        assert library.binary("mod", -5.0, 2.0) == -1.0
        assert library.binary("mod", 5.0, -2.0) == 1.0
        assert math.isnan(library.binary("mod", 5.0, 0.0))

    def test_operands_converted_to_numbers(self, library):
        assert library.binary("+", "2", True) == 3.0

    def test_negate(self, library):
        assert library.negate(3.0) == -3.0
        assert library.negate("4") == -4.0


class TestComparisons:
    def test_number_comparisons(self, library):
        assert library.binary("<", 1.0, 2.0) is True
        assert library.binary(">=", 2.0, 2.0) is True
        assert library.binary("!=", 1.0, 2.0) is True

    def test_string_equality(self, library):
        assert library.binary("=", "a", "a") is True
        assert library.binary("!=", "a", "b") is True

    def test_boolean_has_priority_in_equality(self, library):
        assert library.binary("=", True, "x") is True
        assert library.binary("=", False, "") is True

    def test_number_priority_over_string(self, library):
        assert library.binary("=", 5.0, "5") is True
        assert library.binary("=", "5", 5.0) is True

    def test_relational_converts_to_numbers(self, library):
        assert library.binary("<", "2", "10") is True  # numeric, not lexicographic

    def test_node_set_vs_string_existential(self, library, figure8):
        nodes = node_set(figure8, "12", "14")  # "21 22", "100"
        assert library.binary("=", nodes, "100") is True
        assert library.binary("=", nodes, "none") is False
        assert library.binary("!=", nodes, "100") is True  # some node differs

    def test_node_set_vs_number(self, library, figure8):
        nodes = node_set(figure8, "14", "24")  # both "100"
        assert library.binary("=", nodes, 100.0) is True
        assert library.binary(">", nodes, 99.0) is True
        assert library.binary("<", nodes, 99.0) is False

    def test_scalar_on_left_of_node_set(self, library, figure8):
        nodes = node_set(figure8, "14")
        assert library.binary("<", 99.0, nodes) is True
        assert library.binary(">", 99.0, nodes) is False

    def test_node_set_vs_node_set(self, library, figure8):
        left = node_set(figure8, "14")  # "100"
        right = node_set(figure8, "24", "12")  # "100", "21 22"
        assert library.binary("=", left, right) is True
        assert library.binary("=", left, NodeSet()) is False

    def test_node_set_vs_boolean(self, library, figure8):
        assert library.binary("=", node_set(figure8, "14"), True) is True
        assert library.binary("=", NodeSet(), True) is False


class TestCoreFunctions:
    def test_count_and_sum(self, library, figure8):
        nodes = node_set(figure8, "14", "24", "23")
        assert library.call("count", [nodes]) == 3.0
        # strings "100", "100", "13 14" → 100 + 100 + NaN
        assert math.isnan(library.call("sum", [nodes]))
        assert library.call("sum", [node_set(figure8, "14", "24")]) == 200.0

    def test_count_requires_node_set(self, library):
        with pytest.raises(XPathTypeError):
            library.call("count", ["nope"])

    def test_id_with_string(self, library, figure8):
        result = library.call("id", ["12 24"])
        assert [n.attribute_value("id") for n in result] == ["12", "24"]

    def test_id_with_node_set(self, library, figure8):
        # The string values of c22 ("11 12") are dereferenced as ids.
        result = library.call("id", [node_set(figure8, "22")])
        assert [n.attribute_value("id") for n in result] == ["11", "12"]

    def test_rounding_functions(self, library):
        assert library.call("floor", [2.7]) == 2.0
        assert library.call("ceiling", [2.1]) == 3.0
        assert library.call("round", [2.5]) == 3.0
        assert library.call("round", [-2.5]) == -2.0  # ties toward +infinity
        assert math.isnan(library.call("round", [float("nan")]))

    def test_boolean_functions(self, library):
        assert library.call("not", [False]) is True
        assert library.call("true", []) is True
        assert library.call("false", []) is False
        assert library.call("boolean", ["x"]) is True

    def test_string_functions(self, library):
        assert library.call("concat", ["a", "b", 1.0]) == "ab1"
        assert library.call("starts-with", ["hello", "he"]) is True
        assert library.call("contains", ["hello", "ell"]) is True
        assert library.call("substring-before", ["1999/04/01", "/"]) == "1999"
        assert library.call("substring-after", ["1999/04/01", "/"]) == "04/01"
        assert library.call("string-length", ["hello"]) == 5.0
        assert library.call("normalize-space", ["  a  b \n c "]) == "a b c"

    def test_substring_spec_examples(self, library):
        assert library.call("substring", ["12345", 2.0, 3.0]) == "234"
        assert library.call("substring", ["12345", 2.0]) == "2345"
        assert library.call("substring", ["12345", 1.5, 2.6]) == "234"
        assert library.call("substring", ["12345", 0.0, 3.0]) == "12"
        assert library.call("substring", ["12345", float("nan"), 3.0]) == ""
        assert library.call("substring", ["12345", 1.0, float("nan")]) == ""

    def test_translate(self, library):
        assert library.call("translate", ["bar", "abc", "ABC"]) == "BAr"
        assert library.call("translate", ["--aaa--", "abc-", "ABC"]) == "AAA"

    def test_name_functions(self, library, figure8):
        nodes = node_set(figure8, "12")
        assert library.call("name", [nodes]) == "c"
        assert library.call("local-name", [nodes]) == "c"
        assert library.call("namespace-uri", [nodes]) == ""
        assert library.call("name", [NodeSet()]) == ""

    def test_unknown_function_rejected(self, library):
        from repro.errors import XPathEvaluationError

        with pytest.raises(XPathEvaluationError):
            library.call("frobnicate", [])


# ----------------------------------------------------------------------
# XPath 1.0 Number-grammar conformance (ISSUE 5 bugfix)
# ----------------------------------------------------------------------
class TestNumberGrammarConformance:
    """``number()`` accepts exactly ``-? Digits ('.' Digits?)? | -? '.' Digits``
    with surrounding XML whitespace — not Python's ``float()`` grammar."""

    NAN_STRINGS = [
        "1e2", "1E2", "+1", "+1.5", "Infinity", "-Infinity", "INF", "-inf",
        "NaN", "nan", "0x1A", "1_000", "1e-2", "1.5e3", "--1", "- 1",
        "1.2.3", ".", "-", "", "   ", "1,000", " 1",  # NBSP is not XML whitespace
    ]
    VALID_STRINGS = [
        ("42", 42.0),
        ("-17", -17.0),
        ("3.5", 3.5),
        ("-3.5", -3.5),
        (".5", 0.5),
        ("-.5", -0.5),
        ("1.", 1.0),
        ("007", 7.0),
        (" \t\r\n12 \t\r\n", 12.0),
        ("0", 0.0),
    ]

    @pytest.mark.parametrize("text", NAN_STRINGS)
    def test_rejected_spellings_are_nan(self, text):
        from repro.xpath.values import string_to_number

        assert math.isnan(string_to_number(text)), repr(text)
        assert math.isnan(to_number(text))

    @pytest.mark.parametrize("text,expected", VALID_STRINGS)
    def test_number_grammar_accepts(self, text, expected):
        assert to_number(text) == expected

    def test_negative_zero_string_keeps_its_sign(self):
        assert math.copysign(1.0, to_number("-0")) == -1.0
        assert math.copysign(1.0, to_number("-0.0")) == -1.0

    def test_every_engine_agrees_number_1e2_is_nan(self):
        from repro import api

        doc = parse_xml("<a/>")
        engines = [
            name for name in api.engine_names()
            if name not in ("corexpath", "xpatterns")  # fragment engines
        ]
        for query in ("number('1e2')", "number('+1')", "number('Infinity')"):
            for engine in engines:
                value = api.evaluate(query, doc, engine=engine)
                assert math.isnan(value), (query, engine)

    def test_propagates_to_sum_and_comparisons(self):
        from repro import api

        doc = parse_xml("<a><b>1e2</b><b>3</b></a>")
        assert math.isnan(api.evaluate("sum(//b)", doc))
        assert math.isnan(api.evaluate("number(//b)", doc))
        # '1e2' = 100 was true under the float() grammar; must be false.
        assert api.evaluate("'1e2' = 100", doc) is False
        assert api.evaluate("//b = 100", doc) is False
        assert api.evaluate("//b = 3", doc) is True
        assert api.evaluate("'1e2' < 100", doc) is False
        assert api.evaluate("'12' = 12", doc) is True

    def test_numeric_literals_in_queries_are_unaffected(self):
        from repro import api

        doc = parse_xml("<a/>")
        assert api.evaluate("1.5 + 2", doc) == 3.5
        assert api.evaluate("100 = 100.0", doc) is True


# ----------------------------------------------------------------------
# Signed-zero conformance of round()/floor()/ceiling() (ISSUE 5 bugfix)
# ----------------------------------------------------------------------
class TestSignedZeroRounding:
    """round(x) for x in [-0.5, -0) is *negative* zero; floor/ceiling keep
    the argument's zero sign.  copysign-asserted because -0.0 == 0.0."""

    ROUND_TABLE = [
        (2.5, 3.0), (-2.5, -2.0), (0.4, 0.0), (-0.4, -0.0), (-0.5, -0.0),
        (0.0, 0.0), (-0.0, -0.0), (1.0, 1.0), (-1.0, -1.0), (-0.51, -1.0),
    ]
    FLOOR_TABLE = [
        (0.3, 0.0), (-0.3, -1.0), (0.0, 0.0), (-0.0, -0.0), (2.6, 2.0),
    ]
    CEILING_TABLE = [
        (0.3, 1.0), (-0.3, -0.0), (0.0, 0.0), (-0.0, -0.0), (-2.6, -2.0),
    ]

    @staticmethod
    def _assert_same_float(got, expected):
        assert got == expected
        assert math.copysign(1.0, got) == math.copysign(1.0, expected), (
            got, expected,
        )

    @pytest.mark.parametrize("argument,expected", ROUND_TABLE)
    def test_round(self, library, argument, expected):
        self._assert_same_float(library.call("round", [argument]), expected)

    @pytest.mark.parametrize("argument,expected", FLOOR_TABLE)
    def test_floor(self, library, argument, expected):
        self._assert_same_float(library.call("floor", [argument]), expected)

    @pytest.mark.parametrize("argument,expected", CEILING_TABLE)
    def test_ceiling(self, library, argument, expected):
        self._assert_same_float(library.call("ceiling", [argument]), expected)

    @pytest.mark.parametrize("function", ["round", "floor", "ceiling"])
    def test_nan_and_infinity_pass_through(self, library, function):
        assert math.isnan(library.call(function, [float("nan")]))
        assert library.call(function, [float("inf")]) == float("inf")
        assert library.call(function, [float("-inf")]) == float("-inf")

    def test_negative_zero_observable_through_division(self):
        from repro import api

        doc = parse_xml("<a/>")
        engines = [
            name for name in api.engine_names()
            if name not in ("corexpath", "xpatterns")
        ]
        for engine in engines:
            assert (
                api.evaluate("string(1 div round(-0.5))", doc, engine=engine)
                == "-Infinity"
            ), engine
            assert (
                api.evaluate("string(1 div ceiling(-0.3))", doc, engine=engine)
                == "-Infinity"
            ), engine
            assert (
                api.evaluate("string(1 div round(0.4))", doc, engine=engine)
                == "Infinity"
            ), engine
